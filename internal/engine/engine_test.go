package engine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bpl"
	"repro/internal/exec"
	"repro/internal/meta"
)

func fixedClock() time.Time {
	return time.Date(1995, time.March, 6, 9, 0, 0, 0, time.UTC)
}

func newTestEngine(t *testing.T, src string, opts ...Option) *Engine {
	t.Helper()
	bp, err := bpl.Parse(src)
	if err != nil {
		t.Fatalf("parse blueprint: %v", err)
	}
	opts = append([]Option{WithClock(fixedClock), WithUser("yves")}, opts...)
	e, err := New(meta.NewDB(), bp, opts...)
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	return e
}

func mustCreate(t *testing.T, e *Engine, block, view string) meta.Key {
	t.Helper()
	k, err := e.CreateOID(block, view, "")
	if err != nil {
		t.Fatalf("CreateOID(%s,%s): %v", block, view, err)
	}
	if err := e.Drain(); err != nil {
		t.Fatalf("drain after create: %v", err)
	}
	return k
}

func prop(t *testing.T, e *Engine, k meta.Key, name string) string {
	t.Helper()
	v, _, err := e.DB().GetProp(k, name)
	if err != nil {
		t.Fatalf("GetProp(%v,%s): %v", k, name, err)
	}
	return v
}

const tinyBP = `blueprint tiny
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view src
endview
view dst
    link_from src move propagates outofdate type derived
endview
endblueprint`

func TestCreateOIDAppliesDefaults(t *testing.T) {
	e := newTestEngine(t, tinyBP)
	k := mustCreate(t, e, "cpu", "src")
	if got := prop(t, e, k, "uptodate"); got != "true" {
		t.Errorf("uptodate = %q", got)
	}
	if got := prop(t, e, k, meta.PropOwner); got != "yves" {
		t.Errorf("owner = %q", got)
	}
}

func TestEventAssignAndArg(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
endview
endblueprint`)
	k := mustCreate(t, e, "CPU", "HDL_model")
	if got := prop(t, e, k, "sim_result"); got != "bad" {
		t.Errorf("default sim_result = %q", got)
	}
	if err := e.PostAndDrain(Event{Name: "hdl_sim", Dir: bpl.DirDown, Target: k, Args: []string{"4 errors"}}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "sim_result"); got != "4 errors" {
		t.Errorf("sim_result = %q", got)
	}
	if err := e.PostAndDrain(Event{Name: "hdl_sim", Dir: bpl.DirDown, Target: k, Args: []string{"good"}}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "sim_result"); got != "good" {
		t.Errorf("sim_result = %q", got)
	}
}

func TestOutOfDatePropagation(t *testing.T) {
	e := newTestEngine(t, tinyBP)
	src := mustCreate(t, e, "cpu", "src")
	dst := mustCreate(t, e, "cpu", "dst")
	if _, err := e.CreateLink(meta.DeriveLink, src, dst); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: src}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, src, "uptodate"); got != "true" {
		t.Errorf("source uptodate = %q (ckin must not invalidate the source)", got)
	}
	if got := prop(t, e, dst, "uptodate"); got != "false" {
		t.Errorf("derived uptodate = %q, want false", got)
	}
}

func TestPropagationRespectsDirection(t *testing.T) {
	e := newTestEngine(t, tinyBP)
	src := mustCreate(t, e, "cpu", "src")
	dst := mustCreate(t, e, "cpu", "dst")
	if _, err := e.CreateLink(meta.DeriveLink, src, dst); err != nil {
		t.Fatal(err)
	}
	// outofdate posted UP from dst: travels To->From, reaching src.
	if err := e.PostAndDrain(Event{Name: EventOutOfDate, Dir: bpl.DirUp, Target: dst}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, src, "uptodate"); got != "false" {
		t.Errorf("src uptodate = %q after up event", got)
	}
	// Reset, then post outofdate UP from src: no link has src as To, so
	// nothing else changes.
	if err := e.DB().SetProp(src, "uptodate", "true"); err != nil {
		t.Fatal(err)
	}
	if err := e.DB().SetProp(dst, "uptodate", "true"); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: EventOutOfDate, Dir: bpl.DirUp, Target: src}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, dst, "uptodate"); got != "true" {
		t.Errorf("dst uptodate = %q, up event leaked downward", got)
	}
}

func TestPropagationRespectsPropagateSet(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view src
endview
view dst
    link_from src propagates lvs type derived
endview
endblueprint`)
	src := mustCreate(t, e, "cpu", "src")
	dst := mustCreate(t, e, "cpu", "dst")
	if _, err := e.CreateLink(meta.DeriveLink, src, dst); err != nil {
		t.Fatal(err)
	}
	// The link only propagates lvs, not outofdate.
	if err := e.PostAndDrain(Event{Name: EventOutOfDate, Dir: bpl.DirDown, Target: src}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, dst, "uptodate"); got != "true" {
		t.Errorf("dst uptodate = %q, event crossed a non-propagating link", got)
	}
	if s := e.Stats(); s.Blocked == 0 {
		t.Error("no blocked traversals counted")
	}
}

func TestPostOnlyPropagatesNotLocalRules(t *testing.T) {
	// "post outofdate down" from a ckin rule must not set the posting
	// OID itself out of date (the paper's scenario depends on this).
	e := newTestEngine(t, tinyBP)
	src := mustCreate(t, e, "cpu", "src")
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: src}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, src, "uptodate"); got != "true" {
		t.Errorf("posting OID invalidated itself: uptodate = %q", got)
	}
}

func TestPostToViewTargetsLatest(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view a
    when go do post ping down to b done
endview
view b
    property got default no
    when ping do got = yes done
endview
endblueprint`)
	a := mustCreate(t, e, "blk", "a")
	b1 := mustCreate(t, e, "blk", "b")
	b2 := mustCreate(t, e, "blk", "b")
	if err := e.PostAndDrain(Event{Name: "go", Dir: bpl.DirDown, Target: a}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, b2, "got"); got != "yes" {
		t.Errorf("latest b got = %q", got)
	}
	if got := prop(t, e, b1, "got"); got != "no" {
		t.Errorf("old b got = %q, targeted post hit the wrong version", got)
	}
}

func TestPostToMissingViewTraced(t *testing.T) {
	tr := &BufferTracer{}
	e := newTestEngine(t, `blueprint b
view a
    when go do post ping down to nowhere done
endview
endblueprint`, WithTracer(tr))
	a := mustCreate(t, e, "blk", "a")
	if err := e.PostAndDrain(Event{Name: "go", Dir: bpl.DirDown, Target: a}); err != nil {
		t.Fatal(err)
	}
	errs := tr.OfKind(TraceError)
	if len(errs) != 1 || !strings.Contains(errs[0].Detail, "nowhere") {
		t.Errorf("trace errors = %v", errs)
	}
}

func TestContinuousAssignment(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
    property a default bad
    property b default bad
    let state = ($a == good) and ($b == good)
    when fixa do a = good done
    when fixb do b = good done
endview
endblueprint`)
	k := mustCreate(t, e, "x", "v")
	if got := prop(t, e, k, "state"); got != "false" {
		t.Errorf("initial state = %q", got)
	}
	if err := e.PostAndDrain(Event{Name: "fixa", Dir: bpl.DirDown, Target: k}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "state"); got != "false" {
		t.Errorf("state after fixa = %q", got)
	}
	if err := e.PostAndDrain(Event{Name: "fixb", Dir: bpl.DirDown, Target: k}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "state"); got != "true" {
		t.Errorf("state after fixb = %q", got)
	}
}

func TestExecActionEnvironment(t *testing.T) {
	rec := &exec.Recorder{}
	e := newTestEngine(t, `blueprint b
view schematic
    when ckin do exec netlister "$oid" done
endview
endblueprint`, WithExecutor(rec))
	k := mustCreate(t, e, "cpu", "schematic")
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: k, User: "marc"}); err != nil {
		t.Fatal(err)
	}
	invs := rec.Invocations()
	if len(invs) != 1 {
		t.Fatalf("invocations = %+v", invs)
	}
	inv := invs[0]
	if inv.Script != "netlister" {
		t.Errorf("script = %q", inv.Script)
	}
	if len(inv.Args) != 1 || inv.Args[0] != "cpu,schematic,1" {
		t.Errorf("args = %v", inv.Args)
	}
	if inv.Env["user"] != "marc" || inv.Env["event"] != "ckin" || inv.Env["view"] != "schematic" {
		t.Errorf("env = %v", inv.Env)
	}
}

func TestNotifyAction(t *testing.T) {
	rec := &exec.Recorder{}
	e := newTestEngine(t, `blueprint b
view v
    when ckin do notify "$owner: Your oid $OID has been modified" done
endview
endblueprint`, WithExecutor(rec))
	k := mustCreate(t, e, "cpu", "v")
	if err := e.DB().SetProp(k, meta.PropOwner, "salma"); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: k, User: "marc"}); err != nil {
		t.Fatal(err)
	}
	msgs := rec.Notifications()
	if len(msgs) != 1 || msgs[0] != "salma: Your oid cpu,v,1 has been modified" {
		t.Errorf("notifications = %v", msgs)
	}
}

func TestDateVariableUsesClock(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
    property last default never
    when ckin do last = $date done
endview
endblueprint`)
	k := mustCreate(t, e, "cpu", "v")
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: k}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "last"); got != "1995-03-06T09:00:00Z" {
		t.Errorf("last = %q", got)
	}
}

func TestArgNVariables(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
    property first default x
    property second default x
    property all default x
    when ev do first = $arg1; second = $arg2; all = $arg done
endview
endblueprint`)
	k := mustCreate(t, e, "cpu", "v")
	if err := e.PostAndDrain(Event{Name: "ev", Dir: bpl.DirDown, Target: k, Args: []string{"one", "two"}}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "first"); got != "one" {
		t.Errorf("first = %q", got)
	}
	if got := prop(t, e, k, "second"); got != "two" {
		t.Errorf("second = %q", got)
	}
	if got := prop(t, e, k, "all"); got != "one two" {
		t.Errorf("all = %q", got)
	}
	// Out-of-range argN expands empty.
	e2 := newTestEngine(t, `blueprint b
view v
    property third default keep
    when ev do third = $arg3 done
endview
endblueprint`)
	k2 := mustCreate(t, e2, "cpu", "v")
	if err := e2.PostAndDrain(Event{Name: "ev", Dir: bpl.DirDown, Target: k2, Args: []string{"one"}}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e2, k2, "third"); got != "" {
		t.Errorf("third = %q, want empty", got)
	}
}

func TestCycleTerminationManualLinks(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view v
endview
endblueprint`)
	a := mustCreate(t, e, "a", "v")
	b := mustCreate(t, e, "b", "v")
	c := mustCreate(t, e, "c", "v")
	db := e.DB()
	for _, pair := range [][2]meta.Key{{a, b}, {b, c}, {c, a}} {
		if _, err := db.AddLink(meta.DeriveLink, pair[0], pair[1], "", []string{"outofdate"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PostAndDrain(Event{Name: EventOutOfDate, Dir: bpl.DirDown, Target: a}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []meta.Key{a, b, c} {
		if got := prop(t, e, k, "uptodate"); got != "false" {
			t.Errorf("%v uptodate = %q", k, got)
		}
	}
	s := e.Stats()
	if s.Drops == 0 {
		t.Error("cycle produced no visited-drop")
	}
}

func TestStepLimit(t *testing.T) {
	// Feedback loop: two views posting ping to each other forever via
	// targeted posts.
	e := newTestEngine(t, `blueprint b
view a
    when ping do post ping down to b done
endview
view b
    when ping do post ping down to a done
endview
endblueprint`, WithMaxSteps(100))
	a := mustCreate(t, e, "blk", "a")
	mustCreate(t, e, "blk", "b")
	err := e.PostAndDrain(Event{Name: "ping", Dir: bpl.DirDown, Target: a})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestPostValidation(t *testing.T) {
	e := newTestEngine(t, tinyBP)
	if err := e.Post(Event{Name: "", Target: meta.Key{Block: "a", View: "v", Version: 1}}); err == nil {
		t.Error("empty event name accepted")
	}
	if err := e.Post(Event{Name: "ok", Target: meta.Key{}}); err == nil {
		t.Error("zero target accepted")
	}
	if err := e.Post(Event{Name: "ok", Target: meta.Key{Block: "ghost", View: "v", Version: 1}}); !errors.Is(err, meta.ErrNotFound) {
		t.Errorf("missing target: %v", err)
	}
	if err := e.Post(Event{Name: "bad name", Target: meta.Key{Block: "a", View: "v", Version: 1}}); err == nil {
		t.Error("bad event name accepted")
	}
}

func TestNewRejectsBadBlueprint(t *testing.T) {
	bp, err := bpl.Parse(`blueprint b
view v
    property p default a
    property p default b
endview
endblueprint`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(meta.NewDB(), bp); err == nil {
		t.Error("engine accepted blueprint with analyzer errors")
	}
}

func TestSetBlueprintSwapsPolicy(t *testing.T) {
	e := newTestEngine(t, tinyBP)
	src := mustCreate(t, e, "cpu", "src")
	dst := mustCreate(t, e, "cpu", "dst")
	if _, err := e.CreateLink(meta.DeriveLink, src, dst); err != nil {
		t.Fatal(err)
	}
	// Loosened policy: ckin no longer posts outofdate.
	loose, err := bpl.Parse(`blueprint loose
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view src
endview
view dst
    link_from src move propagates outofdate type derived
endview
endblueprint`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetBlueprint(loose); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: src}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, dst, "uptodate"); got != "true" {
		t.Errorf("loosened policy still propagated: dst uptodate = %q", got)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Name: "ckin", Dir: bpl.DirUp, Target: meta.Key{Block: "reg", View: "verilog", Version: 4},
		Args: []string{"logic sim passed"}}
	if got := ev.String(); got != `ckin up reg,verilog,4 "logic sim passed"` {
		t.Errorf("String = %q", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newTestEngine(t, tinyBP)
	src := mustCreate(t, e, "cpu", "src")
	dst := mustCreate(t, e, "cpu", "dst")
	if _, err := e.CreateLink(meta.DeriveLink, src, dst); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: src}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.OIDsCreated != 2 || s.LinksCreated != 1 {
		t.Errorf("creation stats = %+v", s)
	}
	if s.Posted == 0 || s.Deliveries == 0 || s.RulesFired == 0 || s.Assigns == 0 || s.Posts == 0 || s.Propagations == 0 {
		t.Errorf("activity stats not counted: %+v", s)
	}
}
