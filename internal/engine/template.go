package engine

import (
	"fmt"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// Template application: "Each time the BluePrint is informed of a new OID
// being created, it finds the corresponding view in the BluePrint and
// attaches properties and Links to the new OID" (section 3.2).  Properties
// are created with their default value on the first version and copied or
// moved from the previous version afterwards (Figure 2).  Move-tagged link
// templates shift their instances from the previous version to the new one
// (Figure 3); copy-tagged templates duplicate them.

// CreateOID creates the next version of (block, view), applies the
// blueprint's template rules, and posts the built-in "create" event at the
// new OID.  It returns the new key.  The queue is not drained; callers
// typically post a ckin event next and then Drain.
func (e *Engine) CreateOID(block, view, user string) (meta.Key, error) {
	if user == "" {
		user = e.user
	}
	k, err := e.db.NewVersion(block, view)
	if err != nil {
		return meta.Key{}, err
	}
	e.stats.oidsCreated.Add(1)

	pol := e.pol.Load()
	prev, hasPrev := e.db.Predecessor(k)

	// Owner is a generic property the engine always records.
	if err := e.db.SetProp(k, meta.PropOwner, user); err != nil {
		return meta.Key{}, err
	}

	// Property templates.
	for _, p := range pol.idx.Properties(view) {
		val := p.Default
		if hasPrev && p.Inherit != bpl.InheritNone {
			if pv, ok, _ := e.db.GetProp(prev, p.Name); ok {
				val = pv
			}
			if p.Inherit == bpl.InheritMove {
				if err := e.db.DelProp(prev, p.Name); err != nil {
					return meta.Key{}, err
				}
			}
		}
		if err := e.db.SetProp(k, p.Name, val); err != nil {
			return meta.Key{}, err
		}
	}

	// Link templates: shift or copy instances from the previous version.
	if hasPrev {
		if err := e.inheritLinks(pol.bp, prev, k); err != nil {
			return meta.Key{}, err
		}
	}

	// Continuous assignments get an initial evaluation.
	e.reevalLets(pol.idx, Event{Name: EventCreate, Target: k, User: user})

	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TraceCreateOID, OID: k.String(), Detail: "owner " + user})
	}

	// Let blueprints hook creations.
	e.mu.Lock()
	e.enqueueLocked(Event{Name: EventCreate, Dir: bpl.DirDown, Target: k, User: user}, false)
	e.mu.Unlock()
	return k, nil
}

// inheritLinks applies move/copy link templates when newK supersedes prev.
// Every link instance attached to prev is considered: its own template
// (identified by the stamp it received at creation) decides whether it
// shifts, copies, or stays, regardless of which view declared the template.
func (e *Engine) inheritLinks(bp *bpl.Blueprint, prev, newK meta.Key) error {
	// Collect matching instances first; mutating while iterating the
	// adjacency index under the read lock is not allowed.
	type move struct {
		id   meta.LinkID
		decl *bpl.LinkDecl
		link meta.Link
	}
	var moves []move
	for _, l := range e.db.LinksOf(prev) {
		if l.Template == "" {
			continue
		}
		d, ok := bp.LinkDeclByTemplateID(l.Template)
		if !ok || d.Inherit == bpl.InheritNone {
			continue
		}
		moves = append(moves, move{id: l.ID, decl: d, link: *l})
	}
	for _, m := range moves {
		switch m.decl.Inherit {
		case bpl.InheritMove:
			if err := e.db.RetargetLink(m.id, prev, newK); err != nil {
				return fmt.Errorf("engine: shift link %d: %w", m.id, err)
			}
			e.stats.linksShifted.Add(1)
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceShiftLink, OID: newK.String(),
					Detail: fmt.Sprintf("link %d from %v", m.id, prev)})
			}
		case bpl.InheritCopy:
			from, to := m.link.From, m.link.To
			if from == prev {
				from = newK
			} else {
				to = newK
			}
			props := make(map[string]string, len(m.link.Props))
			for pk, pv := range m.link.Props {
				props[pk] = pv
			}
			id, err := e.db.AddLink(m.link.Class, from, to, m.link.Template, m.link.PropagateList(), props)
			if err != nil {
				return fmt.Errorf("engine: copy link %d: %w", m.id, err)
			}
			e.stats.linksCreated.Add(1)
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceCopyLink, OID: newK.String(),
					Detail: fmt.Sprintf("link %d copied as %d", m.id, id)})
			}
		}
	}
	return nil
}

// CreateLink records a new relationship created by a design activity (e.g.
// the netlister linking a netlist to its schematic).  The engine finds the
// matching link template — use_link in the endpoints' view, or link_from
// fromKey's view declared in toKey's view — and attaches the template's
// PROPAGATE list and TYPE property, exactly as the paper describes for
// newly created Links.  Links with no matching template are created bare:
// they propagate nothing.
func (e *Engine) CreateLink(class meta.LinkClass, from, to meta.Key) (meta.LinkID, error) {
	idx := e.pol.Load().idx
	var (
		template   string
		propagates []string
		props      map[string]string
	)
	if d, ok := idx.LinkTemplate(class == meta.UseLink, from.View, to.View); ok {
		template = d.TemplateID
		propagates = d.Propagates
		if d.Type != "" {
			props = map[string]string{meta.PropType: d.Type}
		}
	}
	id, err := e.db.AddLink(class, from, to, template, propagates, props)
	if err != nil {
		return 0, err
	}
	e.stats.linksCreated.Add(1)
	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TraceCreateLink, OID: to.String(),
			Detail: fmt.Sprintf("%s link %d from %v (template %q)", class, id, from, template)})
	}
	return id, nil
}
