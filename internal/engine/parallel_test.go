package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// Parallel wave drains: waves with disjoint footprints run concurrently on
// the worker pool; overlapping waves serialize in enqueue order.  These
// tests pin the contract that the outcome is independent of the worker
// bound and that SetBlueprint-mid-drain semantics survive parallelism.
// Run with -race.

const invalidateSrc = `blueprint par
view default
    property uptodate default true
    property hits default ""
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false; hits = "$hits." done
endview
view node
    use_link move propagates outofdate
endview
endblueprint`

// buildForest creates trees disjoint trees (depth levels, fanout children)
// plus extra sibling links inside each tree, and returns the roots.
func buildForest(t *testing.T, e *Engine, trees, depth, fanout int) []meta.Key {
	t.Helper()
	var roots []meta.Key
	for tr := 0; tr < trees; tr++ {
		var level []meta.Key
		root, err := e.CreateOID(fmt.Sprintf("t%02d-root", tr), "node", "tess")
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, root)
		level = []meta.Key{root}
		n := 0
		for d := 1; d < depth; d++ {
			var next []meta.Key
			for _, parent := range level {
				for f := 0; f < fanout; f++ {
					k, err := e.CreateOID(fmt.Sprintf("t%02d-n%03d", tr, n), "node", "tess")
					if err != nil {
						t.Fatal(err)
					}
					n++
					if _, err := e.CreateLink(meta.UseLink, parent, k); err != nil {
						t.Fatal(err)
					}
					next = append(next, k)
				}
			}
			level = next
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	return roots
}

// snapshotProps flattens every OID's property map for comparison.
func snapshotProps(e *Engine) map[string]string {
	state := map[string]string{}
	e.DB().EachOID(func(o *meta.OID) bool {
		for p, v := range o.Props {
			state[o.Key.String()+"/"+p] = v
		}
		return true
	})
	return state
}

// TestParallelDrainMatchesSequential runs the same multi-wave batch under
// worker bounds 1, 2 and 8 and demands identical final state: overlapping
// waves are ordered by enqueue sequence, disjoint waves commute.
func TestParallelDrainMatchesSequential(t *testing.T) {
	run := func(workers int) map[string]string {
		bp, err := bpl.Parse(invalidateSrc)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(meta.NewDB(), bp, WithDrainWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		roots := buildForest(t, e, 6, 3, 2)
		// Three rounds over every root: repeated waves in the same
		// component must serialize, waves on different trees may not.
		for round := 0; round < 3; round++ {
			for _, r := range roots {
				if err := e.Post(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: r}); err != nil {
					t.Fatal(err)
				}
				if err := e.Post(Event{Name: EventOutOfDate, Dir: bpl.DirDown, Target: r}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		return snapshotProps(e)
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, seq) {
			t.Errorf("workers=%d: final state differs from sequential", workers)
		}
	}
}

// TestParallelSetBlueprintMidDrain extends the mid-drain loosening contract
// to a multi-wave queue: waves dequeued after the swap (including the rest
// of the wave that triggered it) run under the loosened policy, while
// everything dequeued before keeps the strict one.  The waves share one
// component, so their order — and therefore the assertion — is exact even
// with a full worker pool.
func TestParallelSetBlueprintMidDrain(t *testing.T) {
	strictCount, err := bpl.Parse(`blueprint strict
view node
    use_link move propagates ping
    when ping do hits = "$hits." done
endview
endblueprint`)
	if err != nil {
		t.Fatal(err)
	}
	loosened, err := bpl.Parse(loosenedChainSrc)
	if err != nil {
		t.Fatal(err)
	}

	tr := &swapTracer{}
	e, err := New(meta.NewDB(), strictCount, WithTracer(tr), WithDrainWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	var keys []meta.Key
	for _, name := range []string{"a", "b", "c"} {
		k, err := e.CreateOID(name, "node", "tess")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for i := 0; i+1 < len(keys); i++ {
		if _, err := e.CreateLink(meta.UseLink, keys[i], keys[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}

	// Swap to the loosened policy when b's first delivery begins: wave 1
	// has already delivered a (strict) and delivers b under the policy it
	// was dequeued with; c of wave 1 and all of waves 2 and 3 dequeue
	// after the swap and run loosened.
	tr.trigger = keys[1].String()
	tr.swap = func() {
		if err := e.SetBlueprint(loosened); err != nil {
			t.Errorf("SetBlueprint mid-drain: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := e.Post(Event{Name: "ping", Dir: bpl.DirDown, Target: keys[0]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}

	want := map[string]string{"a": ".", "b": ".", "c": ""}
	for i, name := range []string{"a", "b", "c"} {
		if got := prop(t, e, keys[i], "hits"); got != want[name] {
			t.Errorf("%s: hits = %q, want %q", name, got, want[name])
		}
	}
}

// TestParallelDrainHammer floods an engine whose waves split across many
// disjoint components from concurrent posters, with policy swaps and
// queries in flight.  Run with -race; asserts settlement and conservation
// of deliveries.
func TestParallelDrainHammer(t *testing.T) {
	bp, err := bpl.Parse(invalidateSrc)
	if err != nil {
		t.Fatal(err)
	}
	bp2, err := bpl.Parse(`blueprint par2
view default
    property uptodate default true
endview
view node
    use_link move propagates outofdate
endview
endblueprint`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	roots := buildForest(t, e, 8, 3, 2)
	base := e.Stats()

	const posters, rounds = 8, 40
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ev := Event{Name: EventCheckin, Dir: bpl.DirDown, Target: roots[(p+i)%len(roots)]}
				if err := e.PostAndDrain(ev); err != nil {
					t.Errorf("post: %v", err)
					return
				}
				switch i % 4 {
				case 0:
					_ = e.Stats()
					_ = e.QueueLen()
				case 1:
					pol := bp
					if i%2 == 1 {
						pol = bp2
					}
					if err := e.SetBlueprint(pol); err != nil {
						t.Errorf("set blueprint: %v", err)
						return
					}
				case 2:
					if _, err := e.CreateOID(fmt.Sprintf("x%d-%d", p, i), "node", "tess"); err != nil {
						t.Errorf("create: %v", err)
						return
					}
				case 3:
					_ = e.DB().OIDsWithProp("uptodate", "false")
				}
			}
		}(p)
	}
	wg.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	e.WaitIdle()

	s := e.Stats()
	if s.Posted <= base.Posted || s.Deliveries <= base.Deliveries {
		t.Fatalf("no activity recorded: %+v", s)
	}
	if e.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", e.QueueLen())
	}
	if s.Deliveries < s.Posted {
		t.Fatalf("deliveries %d < posted %d", s.Deliveries, s.Posted)
	}
}

// TestDrainWorkersOptionIndependence pins that footprint conflicts are
// honored: two waves in the same component never interleave even at high
// worker counts.  The rule appends a marker per delivery; with wave
// serialization each of the three waves contributes exactly one marker to
// every node in order.
func TestDrainWorkersOptionIndependence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := newTestEngine(t, `blueprint b
view default
    property seen default ""
    when mark do seen = "$seen$arg1" done
endview
view node
    use_link move propagates mark
endview
endblueprint`, WithDrainWorkers(workers))
		a := mustCreate(t, e, "a", "node")
		b := mustCreate(t, e, "b", "node")
		if _, err := e.CreateLink(meta.UseLink, a, b); err != nil {
			t.Fatal(err)
		}
		for _, m := range []string{"1", "2", "3"} {
			if err := e.Post(Event{Name: "mark", Dir: bpl.DirDown, Target: a, Args: []string{m}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		for _, k := range []meta.Key{a, b} {
			if got := prop(t, e, k, "seen"); got != "123" {
				t.Errorf("workers=%d %v seen=%q, want ordered 123", workers, k, got)
			}
		}
	}
}

// TestScheduleRefreshesRunningWaveRoots pins the regression where a
// running wave's cached footprint root survived a mid-drain component
// merge: a link created while wave 1 runs merges its component with
// another block's, and a later wave seeded there must conflict — not run
// concurrently.  White-box: the scheduler state is staged by hand under
// the engine mutex, exactly as a worker owning wave 1 would leave it.
func TestScheduleRefreshesRunningWaveRoots(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
endview
endblueprint`, WithDrainWorkers(4))
	a := mustCreate(t, e, "blk-a", "v")
	b := mustCreate(t, e, "blk-b", "v")

	if err := e.Post(Event{Name: "ping", Dir: bpl.DirDown, Target: a}); err != nil {
		t.Fatal(err)
	}
	if err := e.Post(Event{Name: "ping", Dir: bpl.DirDown, Target: b}); err != nil {
		t.Fatal(err)
	}

	// Stage: wave 1 (seed blk-a) is claimed by a worker, its root cached
	// under the current generation.
	e.mu.Lock()
	w1 := e.waves[e.whead]
	w1.root = e.db.Component("blk-a")
	w1.rootSet = true
	w1.running = true
	e.active = 1
	e.compGen = e.db.ComponentGen()
	e.mu.Unlock()

	// Mid-drain, a propagating link merges blk-a and blk-b.
	if _, err := e.DB().AddLink(meta.DeriveLink, a, b, "", []string{"ping"}, nil); err != nil {
		t.Fatal(err)
	}

	// The scheduler must now see both waves in one component and refuse
	// to run wave 2 while wave 1 is in flight.
	e.mu.Lock()
	got := e.scheduleLocked(4, &e.drain)
	w2 := e.waves[e.whead+1]
	if got != nil {
		t.Errorf("scheduled wave seeded on %q concurrently with running wave on %q after merge", got.seed, w1.seed)
	}
	if w2.running {
		t.Error("wave 2 marked running despite merged component")
	}
	if w1.root != w2.root {
		t.Errorf("roots not refreshed after merge: running=%q pending=%q", w1.root, w2.root)
	}
	// Unstage so the engine can settle normally.
	w1.running = false
	e.active = 0
	e.mu.Unlock()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}
