package bpl

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`view schematic ( ) ; , = == != $arg "a b" name_1`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokIdent, TokIdent, TokLParen, TokRParen, TokSemi, TokComma,
		TokAssign, TokEq, TokNeq, TokVar, TokString, TokIdent, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[9].Text != "arg" {
		t.Errorf("$var text = %q", toks[9].Text)
	}
	if toks[10].Text != "a b" {
		t.Errorf("string text = %q", toks[10].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("# a comment\nfoo # trailing\nbar")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "foo" || toks[1].Text != "bar" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb\n   $c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("bb at %d:%d", toks[1].Line, toks[1].Col)
	}
	if toks[2].Line != 3 || toks[2].Col != 4 {
		t.Errorf("$c at %d:%d", toks[2].Line, toks[2].Col)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"he said \"hi\"\n\tend \\ \$x"`)
	if err != nil {
		t.Fatal(err)
	}
	want := "he said \"hi\"\n\tend \\ \\$x"
	if toks[0].Text != want {
		t.Errorf("string = %q, want %q", toks[0].Text, want)
	}
}

func TestLexToolPathIdent(t *testing.T) {
	toks, err := Lex("exec netlister.sh /bin/check run-drc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "netlister.sh" {
		t.Errorf("tool path = %q", toks[1].Text)
	}
	if toks[2].Text != "/bin/check" {
		t.Errorf("abs path = %q", toks[2].Text)
	}
	if toks[3].Text != "run-drc" {
		t.Errorf("dashed = %q", toks[3].Text)
	}
}

func TestLexErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated string": `"abc`,
		"newline in string":   "\"ab\nc\"",
		"bad escape":          `"a\qb"`,
		"lone bang":           `a ! b`,
		"empty var":           `$ x`,
		"stray char":          "a @ b",
	}
	for name, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("%s: error lacks position: %v", name, err)
		}
	}
}

func TestLexEOFStable(t *testing.T) {
	lx := NewLexer("x")
	if tok, err := lx.Next(); err != nil || tok.Kind != TokIdent {
		t.Fatalf("first: %v %v", tok, err)
	}
	for i := 0; i < 3; i++ {
		tok, err := lx.Next()
		if err != nil || tok.Kind != TokEOF {
			t.Fatalf("EOF call %d: %v %v", i, tok, err)
		}
	}
}
