// Package state implements the project-state queries of the paper:
// "Designers can retrieve the state of the project by performing queries.
// Therefore, designers know exactly what data still needs to be modified
// before reaching a planned state in the project."
//
// The package evaluates the blueprint's continuous assignments against the
// live meta-database and explains, per OID, which leaf conditions hold the
// design back.
package state

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// OIDState is the state report for one OID.
type OIDState struct {
	Key meta.Key

	// Ready reports whether every continuous assignment of the OID's view
	// evaluates true.  OIDs of views without continuous assignments are
	// vacuously ready.
	Ready bool

	// Lets holds the value of each continuous assignment by name.
	Lets map[string]bool

	// Reasons lists the failing leaf conditions, with current values, e.g.
	// `($drc_result == good) [$drc_result = "bad"]`.
	Reasons []string

	// Props is a copy of the OID's properties.
	Props map[string]string
}

// lookupFor resolves $references against an OID snapshot; there is no
// triggering event in query context, so only properties and the key
// built-ins resolve.
func lookupFor(o *meta.OID) bpl.LookupFunc {
	return func(name string) string {
		switch name {
		case "oid", "OID":
			return o.Key.String()
		case "block":
			return o.Key.Block
		case "view":
			return o.Key.View
		case "version":
			return fmt.Sprintf("%d", o.Key.Version)
		}
		return o.Props[name]
	}
}

// evaluateInto computes the state of one OID against a resolved let slice,
// reusing st's Lets map and Reasons backing array across calls — the
// allocation-shy core behind evaluate and Stream.  With a non-nil index,
// failing lets are explained through the compiled explainers; otherwise
// through one-shot ExplainFailure.  The filled state shares o.Props;
// callers that retain it must replace Props (and Reasons) with copies.
func evaluateInto(st *OIDState, lets []*bpl.LetDecl, ix *bpl.Index, o *meta.OID) {
	st.Key = o.Key
	st.Ready = true
	if st.Lets == nil {
		st.Lets = make(map[string]bool, len(lets))
	} else {
		clear(st.Lets)
	}
	st.Reasons = st.Reasons[:0]
	st.Props = o.Props
	lookup := lookupFor(o)
	for _, l := range lets {
		ok := l.Expr.Eval(lookup)
		st.Lets[l.Name] = ok
		if !ok {
			st.Ready = false
			var reasons []string
			if ix != nil {
				reasons = ix.Explainer(l).Failures(lookup)
			} else {
				reasons = bpl.ExplainFailure(l.Expr, lookup)
			}
			for _, r := range reasons {
				st.Reasons = append(st.Reasons, l.Name+": "+r)
			}
		}
	}
}

// evaluate computes the state of one OID against a resolved let slice.
// The returned state shares o.Props; callers iterating live database
// objects must replace it with a copy.
func evaluate(lets []*bpl.LetDecl, ix *bpl.Index, o *meta.OID) OIDState {
	var st OIDState
	evaluateInto(&st, lets, ix, o)
	return st
}

// Evaluate computes the state report of a single OID snapshot under bp.
func Evaluate(bp *bpl.Blueprint, o *meta.OID) OIDState {
	return evaluate(bp.EffectiveLets(o.Key.View), nil, o)
}

// EvaluateWith is Evaluate against a compiled policy index; callers that
// evaluate many OIDs (Report) resolve each view's continuous assignments
// and failure explanations once instead of once per OID.
func EvaluateWith(ix *bpl.Index, o *meta.OID) OIDState {
	return evaluate(ix.Lets(o.Key.View), ix, o)
}

// Stream evaluates the latest version of every version chain and hands
// each report to fn, in unspecified order, without materializing property
// maps: the OIDState is reused between calls, its Props field aliases the
// live database map, and its Reasons share one backing array.  fn must
// treat the state as read-only, must not retain it (or Props/Reasons)
// past the call, and must not call DB methods — it runs under the
// database's shard read locks.  Returning false stops the stream.
//
// This is the pull API behind the server's REPORT/GAP verbs: a report row
// can be formatted and shipped per OID with zero per-row map copies,
// where Report clones every property map up front.
//
// With MVCC enabled the rows are evaluated against a pinned read view —
// no shard lock is taken, writers proceed throughout, and the pass is a
// true point-in-time snapshot instead of per-shard consistent.
func Stream(db *meta.DB, bp *bpl.Blueprint, fn func(*OIDState) bool) {
	if db.MVCCEnabled() {
		v := db.ReadView()
		defer v.Close()
		StreamView(v, bp, fn)
		return
	}
	ix := bp.Index()
	var st OIDState
	db.EachLatestOID(func(o *meta.OID) bool {
		evaluateInto(&st, ix.Lets(o.Key.View), ix, o)
		return fn(&st)
	})
}

// StreamView is Stream against an explicit pinned view: every row is
// evaluated at exactly the view's LSN, lock-free.  Props aliases the
// view's immutable version map and, unlike the live-database Stream, may
// be retained by fn.
func StreamView(v *meta.View, bp *bpl.Blueprint, fn func(*OIDState) bool) {
	ix := bp.Index()
	var st OIDState
	v.EachLatestOID(func(o *meta.OID) bool {
		evaluateInto(&st, ix.Lets(o.Key.View), ix, o)
		return fn(&st)
	})
}

// StreamSorted evaluates the latest version of every version chain in key
// order and hands each report to fn — the streaming form behind the
// server's per-row flushed REPORT/GAP responses.  Unlike Stream, fn runs
// outside the database locks (each OID is evaluated in its own WithOID
// round-trip, so fn may block on a slow network writer without stalling
// writers), and the row order is the stable sorted order the wire format
// promises.  The cost of that shape: the pass is per-row consistent, not a
// point-in-time snapshot, and a chain pruned mid-pass is skipped.  The
// OIDState is reused between calls and its Props field is nil — property
// maps are never copied or exposed.  Returning false stops the stream.
// With MVCC enabled the pass pins a read view instead: rows are
// evaluated lock-free at one LSN, the mid-pass-prune caveat disappears,
// and a slow consumer never holds any database lock.
func StreamSorted(db *meta.DB, bp *bpl.Blueprint, fn func(*OIDState) bool) {
	if db.MVCCEnabled() {
		v := db.ReadView()
		defer v.Close()
		StreamSortedView(v, bp, fn)
		return
	}
	ix := bp.Index()
	var keys []meta.Key
	db.EachLatestOID(func(o *meta.OID) bool {
		keys = append(keys, o.Key)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	var st OIDState
	for _, k := range keys {
		err := db.WithOID(k, func(o *meta.OID) {
			evaluateInto(&st, ix.Lets(o.Key.View), ix, o)
		})
		if err != nil {
			continue // pruned between the key pass and now
		}
		st.Props = nil // aliases the live map; not valid outside the lock
		if !fn(&st) {
			return
		}
	}
}

// StreamSortedView is StreamSorted against an explicit pinned view: the
// stable key-sorted row order of the wire format, every row consistent at
// the view's LSN, zero locks held while fn runs (it may block on a slow
// network writer without stalling anything).  Props aliases the view's
// immutable version map and may be retained.
func StreamSortedView(v *meta.View, bp *bpl.Blueprint, fn func(*OIDState) bool) {
	ix := bp.Index()
	type row struct {
		key   meta.Key
		seq   int64
		props map[string]string
	}
	var rows []row
	v.EachLatestOID(func(o *meta.OID) bool {
		rows = append(rows, row{key: o.Key, seq: o.Seq, props: o.Props})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].key.Less(rows[j].key) })
	var st OIDState
	var o meta.OID
	for _, r := range rows {
		o = meta.OID{Key: r.key, Seq: r.seq, Props: r.props}
		evaluateInto(&st, ix.Lets(r.key.View), ix, &o)
		if !fn(&st) {
			return
		}
	}
}

// Report evaluates the latest version of every version chain and returns
// the reports sorted by key.  The blueprint is compiled once (and cached on
// it), and the database is read in a per-shard locked pass without
// materializing intermediate OID clones.  Each returned state owns its
// maps; for large databases the streaming form (Stream) avoids the copies.
func Report(db *meta.DB, bp *bpl.Blueprint) []OIDState {
	ix := bp.Index()
	var out []OIDState
	if db.MVCCEnabled() {
		// Point-in-time rows from a pinned view; the version maps are
		// immutable, so the returned states may share them safely.
		v := db.ReadView()
		defer v.Close()
		v.EachLatestOID(func(o *meta.OID) bool {
			out = append(out, EvaluateWith(ix, o))
			return true
		})
		return sortReport(out)
	}
	db.EachLatestOID(func(o *meta.OID) bool {
		st := EvaluateWith(ix, o)
		props := make(map[string]string, len(o.Props))
		for k, v := range o.Props {
			props[k] = v
		}
		st.Props = props
		out = append(out, st)
		return true
	})
	return sortReport(out)
}

// sortReport orders report rows by key through a permutation — OIDState
// is large and swapping it through the generic sorter shows up in
// profiles.
func sortReport(out []OIDState) []OIDState {
	perm := make([]int, len(out))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		return out[perm[i]].Key.Less(out[perm[j]].Key)
	})
	sorted := make([]OIDState, len(out))
	for i, j := range perm {
		sorted[i] = out[j]
	}
	return sorted
}

// Gap returns only the reports of OIDs that are not ready — the "what
// still needs to be modified" answer.
func Gap(db *meta.DB, bp *bpl.Blueprint) []OIDState {
	var out []OIDState
	for _, st := range Report(db, bp) {
		if !st.Ready {
			out = append(out, st)
		}
	}
	return out
}

// ViewSummary aggregates readiness per view type.
type ViewSummary struct {
	View  string
	Total int
	Ready int
}

// Summarize groups a report by view.
func Summarize(report []OIDState) []ViewSummary {
	byView := map[string]*ViewSummary{}
	for _, st := range report {
		s := byView[st.Key.View]
		if s == nil {
			s = &ViewSummary{View: st.Key.View}
			byView[st.Key.View] = s
		}
		s.Total++
		if st.Ready {
			s.Ready++
		}
	}
	out := make([]ViewSummary, 0, len(byView))
	for _, s := range byView {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].View < out[j].View })
	return out
}

// Format renders a report as a fixed-width table for CLI display.
func Format(report []OIDState) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-30s %-6s %s\n", "OID", "READY", "BLOCKING CONDITIONS")
	for _, st := range report {
		ready := "yes"
		if !st.Ready {
			ready = "no"
		}
		fmt.Fprintf(&sb, "%-30s %-6s %s\n", st.Key.String(), ready, strings.Join(st.Reasons, "; "))
	}
	return sb.String()
}

// Diff compares two stored configurations of the same database and reports
// which OID addresses were added and removed between them — the "state of
// the design hierarchy in a snapshot at each step of the design cycle"
// compared across steps.
type Diff struct {
	Added   []meta.Key
	Removed []meta.Key
	Common  int
}

// DiffConfigurations computes the address-level difference from old to new.
func DiffConfigurations(db *meta.DB, oldName, newName string) (Diff, error) {
	oldC, err := db.GetConfiguration(oldName)
	if err != nil {
		return Diff{}, err
	}
	newC, err := db.GetConfiguration(newName)
	if err != nil {
		return Diff{}, err
	}
	var d Diff
	inOld := map[meta.Key]bool{}
	for _, k := range oldC.OIDs {
		inOld[k] = true
	}
	for _, k := range newC.OIDs {
		if inOld[k] {
			d.Common++
		} else {
			d.Added = append(d.Added, k)
		}
	}
	inNew := map[meta.Key]bool{}
	for _, k := range newC.OIDs {
		inNew[k] = true
	}
	for _, k := range oldC.OIDs {
		if !inNew[k] {
			d.Removed = append(d.Removed, k)
		}
	}
	return d, nil
}

// Blocked computes the transitive impact of an out-of-date OID: every
// downstream OID whose chain of links admits the outofdate event.  This is
// the query a project administrator runs before deciding whether to loosen
// the BluePrint.  With MVCC enabled the walk runs on a pinned view (zero
// shard locks — Dependents branches internally); BlockedView evaluates the
// same query at an already-pinned view, keeping a report evaluation on one
// consistent LSN end to end.
func Blocked(db *meta.DB, origin meta.Key, event string) []meta.Key {
	return db.Dependents(origin, func(l *meta.Link) bool {
		return l.CanPropagate(event)
	})
}

// BlockedView is Blocked evaluated at a pinned view.
func BlockedView(v *meta.View, origin meta.Key, event string) []meta.Key {
	return v.Dependents(origin, func(l *meta.Link) bool {
		return l.CanPropagate(event)
	})
}
