// Package wire defines the text protocol spoken between wrapper programs
// and the DAMOCLES project server.  The paper's wrappers post event
// messages of the form
//
//	postEvent ckin up reg,verilog,4 "logic sim passed"
//
// through the computer network; this package provides the line-based
// framing, quoting and request/response encoding both ends share.
//
// Requests are single lines: a verb followed by space-separated arguments;
// arguments containing spaces are double-quoted with backslash escapes.
// Responses are either a single "OK <detail>" / "ERR <message>" line, or a
// multi-line form "OK+ <detail>" followed by body lines each prefixed with
// '|' and a terminating "." line.
package wire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Protocol verbs.
const (
	VerbPost      = "POST"      // POST <event> <up|down> <oid> [args...]
	VerbCreate    = "CREATE"    // CREATE <block> <view>
	VerbLink      = "LINK"      // LINK <use|derive> <from-oid> <to-oid>
	VerbState     = "STATE"     // STATE <oid>
	VerbReport    = "REPORT"    // REPORT
	VerbGap       = "GAP"       // GAP
	VerbSnapshot  = "SNAPSHOT"  // SNAPSHOT <name> <root-oid|*>
	VerbStats     = "STATS"     // STATS
	VerbBlueprint = "BLUEPRINT" // BLUEPRINT
	VerbPing      = "PING"      // PING
	VerbQuit      = "QUIT"      // QUIT
	VerbLatest    = "LATEST"    // LATEST <block> <view>
	VerbProp      = "PROP"      // PROP <oid> <name>
	VerbDot       = "DOT"       // DOT <flow|state>
	VerbLinks     = "LINKS"     // LINKS <oid>
	VerbSync      = "SYNC"      // SYNC — wait until the event queue settles
	VerbBatch     = "BATCH"     // BATCH <item> [<item>...]; see BatchItem
	VerbFollow    = "FOLLOW"    // FOLLOW <last-applied-lsn> [<term>]; see the Follow frame helpers
	VerbLSN       = "LSN"       // LSN — report the journal/applied log position
	VerbRole      = "ROLE"      // ROLE — role, term, applied LSN and commit watermark in one line
	VerbPromote   = "PROMOTE"   // PROMOTE — flip a read-only follower into a primary (term bump)
	VerbBPSwap    = "BPSWAP"    // BPSWAP <source> — swap the live blueprint (one quoted arg, newlines escaped)
	VerbQuery     = "QUERY"     // QUERY <lsn> <reach|deps|equiv|resolve> <args...> — graph query pinned at an LSN (0 = current)
)

// AckPrefix opens the one upstream line a follower may write on a FOLLOW
// connection: "ACK <lsn>" reports that every record up to lsn is applied
// AND committed (durable) on the follower.  The primary's quorum gate
// counts these per-follower positions; a follower that never sends them
// (an older build) simply never contributes to a quorum.
const AckPrefix = "ACK"

// Follow-stream framing.  FOLLOW turns the connection into a one-way
// record stream: the server answers with a multi-line response whose body
// lines are emitted one at a time (flushed per frame, never terminated
// while the stream lives) and whose first token discriminates the frame:
//
//	snapshot <lsn> <n>           — a bootstrap document follows as the next
//	                               n body lines, verbatim JSON; the
//	                               follower re-bases on it and records
//	                               resume at lsn+1
//	record <lsn> <seq> <op> ...  — one journal record, fields quoted with
//	                               the protocol's own rules
//	watermark <lsn>              — the follower has seen every record the
//	                               primary has committed up to lsn
//	error <message>              — the stream failed terminally on the
//	                               primary side (tail corruption, position
//	                               ahead of the primary's history);
//	                               reconnecting will not help
//
// The terminating "." line is written when the server ends the stream
// deliberately — shutdown, or right after an error frame; a vanished
// connection is the usual end.
const (
	FollowFrameSnapshot  = "snapshot"
	FollowFrameRecord    = "record"
	FollowFrameWatermark = "watermark"
	FollowFrameError     = "error"

	// FollowFrameHealth — "health degraded <reason>" — tells a caught-up
	// follower its upstream flipped to the degraded state: the preceding
	// watermark is final until the primary's disk fault is resolved.  The
	// stream stays open; the frame is informational, not terminal.
	FollowFrameHealth = "health"

	// FollowFramePing — "ping <lsn>" — is the idle-stream liveness tick:
	// the primary is alive and caught up at commit position lsn, it just
	// has nothing new to ship.  A follower arms a read deadline across
	// stream frames (the stall timeout) and relies on these ticks to keep
	// a healthy idle link from tripping it; their absence past the
	// timeout is the signature of a half-open connection after a
	// partition — silence a plain TCP peer would never report.
	FollowFramePing = "ping"
)

// EncodeFollowRecord renders one journal record as a follow-stream body
// line (without the "|" prefix).
func EncodeFollowRecord(lsn, seq int64, op string, args []string) string {
	var sb strings.Builder
	sb.WriteString(FollowFrameRecord)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatInt(lsn, 10))
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatInt(seq, 10))
	sb.WriteByte(' ')
	sb.WriteString(Quote(op))
	for _, a := range args {
		sb.WriteByte(' ')
		sb.WriteString(Quote(a))
	}
	return sb.String()
}

// ParseFollowRecord decodes the tokenized fields of a "record" frame
// (fields[0] must already be FollowFrameRecord).
func ParseFollowRecord(fields []string) (lsn, seq int64, op string, args []string, err error) {
	if len(fields) < 4 || fields[0] != FollowFrameRecord {
		return 0, 0, "", nil, fmt.Errorf("%w: record frame wants record <lsn> <seq> <op> [args...]", ErrSyntax)
	}
	lsn, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, 0, "", nil, fmt.Errorf("%w: record lsn %q", ErrSyntax, fields[1])
	}
	seq, err = strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return 0, 0, "", nil, fmt.Errorf("%w: record seq %q", ErrSyntax, fields[2])
	}
	op = fields[3]
	if len(fields) > 4 {
		args = fields[4:]
	}
	return lsn, seq, op, args, nil
}

// ErrSyntax reports a malformed protocol line.
var ErrSyntax = errors.New("wire: syntax error")

// BatchItem is one event inside a BATCH request — the batched form of the
// POST verb.  A wrapper checking in a whole hierarchy sends one BATCH with
// an item per OID instead of one POST round-trip each; the server posts
// every item, drains once, and returns one response.
//
// On the wire each item is a single quoted field whose content is itself a
// postEvent-shaped sub-line, "<event> <dir> <oid> [args...]", tokenized
// with the same quoting rules as a request line.  Nesting through Quote
// keeps arbitrary argument bytes safe without a second framing scheme.
type BatchItem struct {
	Event string
	Dir   string // "up" or "down"
	OID   string // target key in block,view,version syntax
	Args  []string
}

// Encode renders the item as the sub-line carried inside one BATCH field.
func (it BatchItem) Encode() string {
	var sb strings.Builder
	sb.WriteString(Quote(it.Event))
	sb.WriteByte(' ')
	sb.WriteString(Quote(it.Dir))
	sb.WriteByte(' ')
	sb.WriteString(Quote(it.OID))
	for _, a := range it.Args {
		sb.WriteByte(' ')
		sb.WriteString(Quote(a))
	}
	return sb.String()
}

// ParseBatchItem parses one BATCH field back into an item.
func ParseBatchItem(s string) (BatchItem, error) {
	fields, err := Tokenize(s)
	if err != nil {
		return BatchItem{}, err
	}
	if len(fields) < 3 {
		return BatchItem{}, fmt.Errorf("%w: batch item wants <event> <dir> <oid> [args...], got %q", ErrSyntax, s)
	}
	it := BatchItem{Event: fields[0], Dir: fields[1], OID: fields[2]}
	if len(fields) > 3 {
		it.Args = fields[3:]
	}
	return it, nil
}

// Request is one client command.
type Request struct {
	Verb string
	Args []string
	// User identifies the posting designer; carried as a "user=<name>"
	// prefix field so every verb can be attributed.
	User string
}

// Encode renders the request as a protocol line (without newline).
func (r Request) Encode() string {
	var sb strings.Builder
	if r.User != "" {
		sb.WriteString(Quote("user=" + r.User))
		sb.WriteByte(' ')
	}
	sb.WriteString(r.Verb)
	for _, a := range r.Args {
		sb.WriteByte(' ')
		sb.WriteString(Quote(a))
	}
	return sb.String()
}

// ParseRequest parses a protocol line.
func ParseRequest(line string) (Request, error) {
	fields, err := Tokenize(line)
	if err != nil {
		return Request{}, err
	}
	if len(fields) == 0 {
		return Request{}, fmt.Errorf("%w: empty request", ErrSyntax)
	}
	var req Request
	if strings.HasPrefix(fields[0], "user=") {
		req.User = strings.TrimPrefix(fields[0], "user=")
		fields = fields[1:]
		if len(fields) == 0 {
			return Request{}, fmt.Errorf("%w: missing verb", ErrSyntax)
		}
	}
	req.Verb = strings.ToUpper(fields[0])
	if len(fields) > 1 {
		req.Args = fields[1:]
	}
	return req, nil
}

// Response is one server reply.
type Response struct {
	OK     bool
	Detail string   // single-line detail / error message
	Body   []string // optional multi-line payload
}

// Encode renders the response as protocol lines (without trailing newline
// on the last line).
func (r Response) Encode() string {
	status := "ERR"
	if r.OK {
		status = "OK"
	}
	if len(r.Body) == 0 {
		if r.Detail == "" {
			return status
		}
		return status + " " + r.Detail
	}
	var sb strings.Builder
	sb.WriteString(status)
	sb.WriteString("+")
	if r.Detail != "" {
		sb.WriteByte(' ')
		sb.WriteString(r.Detail)
	}
	for _, line := range r.Body {
		sb.WriteString("\n|")
		sb.WriteString(line)
	}
	sb.WriteString("\n.")
	return sb.String()
}

// ParseResponseHeader parses the first line of a response and reports
// whether body lines follow.
func ParseResponseHeader(line string) (resp Response, multiline bool, err error) {
	head, detail, _ := strings.Cut(line, " ")
	switch head {
	case "OK":
		return Response{OK: true, Detail: detail}, false, nil
	case "OK+":
		return Response{OK: true, Detail: detail}, true, nil
	case "ERR":
		return Response{OK: false, Detail: detail}, false, nil
	case "ERR+":
		return Response{OK: false, Detail: detail}, true, nil
	default:
		return Response{}, false, fmt.Errorf("%w: bad response header %q", ErrSyntax, line)
	}
}

// ParseBodyLine interprets one line following a multiline header: a body
// line ("|" prefix, returned unprefixed) or the "." terminator (done=true).
func ParseBodyLine(line string) (content string, done bool, err error) {
	if line == "." {
		return "", true, nil
	}
	if strings.HasPrefix(line, "|") {
		return line[1:], false, nil
	}
	return "", false, fmt.Errorf("%w: bad body line %q", ErrSyntax, line)
}

// Quote renders s as a protocol field: bare when it contains no spaces,
// quotes or control characters, double-quoted with escapes otherwise.
// The escaping rules live in AppendQuote; keeping one table means the
// journal's payload encoder can never drift from the other producers.
func Quote(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t\"\\\r\n") {
		return s
	}
	return string(AppendQuote(nil, s))
}

// AppendQuote appends the Quote rendering of s to dst — the allocation-free
// form the journal's hot append path uses to encode record payloads into a
// reused buffer.
func AppendQuote(dst []byte, s string) []byte {
	if s != "" && !strings.ContainsAny(s, " \t\"\\\r\n") {
		return append(dst, s...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\t':
			dst = append(dst, '\\', 't')
		case '\r':
			dst = append(dst, '\\', 'r')
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// Tokenize splits a protocol line into fields, honoring double quotes and
// backslash escapes.
func Tokenize(line string) ([]string, error) {
	var fields []string
	i := 0
	n := len(line)
	for {
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= n {
			return fields, nil
		}
		var sb strings.Builder
		if line[i] == '"' {
			i++
			closed := false
			for i < n {
				c := line[i]
				if c == '"' {
					i++
					closed = true
					break
				}
				if c == '\\' {
					if i+1 >= n {
						return nil, fmt.Errorf("%w: dangling escape", ErrSyntax)
					}
					i++
					switch line[i] {
					case '"':
						sb.WriteByte('"')
					case '\\':
						sb.WriteByte('\\')
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					default:
						return nil, fmt.Errorf("%w: unknown escape \\%c", ErrSyntax, line[i])
					}
					i++
					continue
				}
				sb.WriteByte(c)
				i++
			}
			if !closed {
				return nil, fmt.Errorf("%w: unterminated quote", ErrSyntax)
			}
		} else {
			for i < n && line[i] != ' ' && line[i] != '\t' {
				if line[i] == '"' {
					return nil, fmt.Errorf("%w: quote inside bare field", ErrSyntax)
				}
				sb.WriteByte(line[i])
				i++
			}
		}
		fields = append(fields, sb.String())
	}
}
