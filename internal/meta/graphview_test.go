package meta

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Tests for the view-based graph walks and the versioned reachability
// index behind them (graphview.go): semantics identical to the locked
// walks, byte-stable under concurrent writers, repaired by
// RebuildComponents.

// TestWalksMissingRootNil pins the unified missing-root semantics: all
// four walks treat a root that does not exist the same way — nil from
// Reachable/Dependents/Equivalents, ErrNotFound from Resolve — on both
// the locked and the MVCC path.
func TestWalksMissingRootNil(t *testing.T) {
	for _, mvcc := range []bool{false, true} {
		db := NewDB()
		k, err := db.NewVersion("cpu", "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		k2, err := db.NewVersion("alu", "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.AddLink(DeriveLink, k, k2, "t", nil, nil); err != nil {
			t.Fatal(err)
		}
		if mvcc {
			db.EnableMVCC()
		}
		ghost := Key{Block: "ghost", View: "HDL_model", Version: 1}
		if got := db.Reachable(ghost, nil); got != nil {
			t.Errorf("mvcc=%v: Reachable(missing) = %v, want nil", mvcc, got)
		}
		if got := db.Dependents(ghost, nil); got != nil {
			t.Errorf("mvcc=%v: Dependents(missing) = %v, want nil", mvcc, got)
		}
		if got := db.Equivalents(ghost); got != nil {
			t.Errorf("mvcc=%v: Equivalents(missing) = %v, want nil", mvcc, got)
		}
		if _, err := db.Resolve("ghost-config"); err == nil {
			t.Errorf("mvcc=%v: Resolve(missing) = nil error, want ErrNotFound", mvcc)
		}
		// And an existing root still answers on both paths.
		if got := db.Reachable(k, nil); len(got) != 1 || got[0] != k {
			t.Errorf("mvcc=%v: Reachable(%v) = %v, want [%v] (use links only)", mvcc, k, got, k)
		}
		if got := db.Dependents(k, nil); len(got) != 1 || got[0] != k2 {
			t.Errorf("mvcc=%v: Dependents(%v) = %v, want [%v]", mvcc, k, got, k2)
		}
	}
}

// graphProgram drives a randomized link program — creates, props, links
// (a third of them equivalence-typed), retargets, deletions and prunes —
// against a database.  Identical seeds produce identical programs, so
// running it on a plain and an MVCC database yields the same state.
func graphProgram(db *DB, rng *rand.Rand) ([]Key, bool) {
	blocks := []string{"cpu", "alu", "reg", "shifter", "dec", "mmu"}
	views := []string{"HDL_model", "schematic", "netlist"}
	var keys []Key
	for i := 0; i < rng.Intn(25)+8; i++ {
		k, err := db.NewVersion(blocks[rng.Intn(len(blocks))], views[rng.Intn(len(views))])
		if err != nil {
			return nil, false
		}
		if rng.Intn(2) == 0 {
			if err := db.SetProp(k, "p", fmt.Sprintf("v%d", rng.Intn(3))); err != nil {
				return nil, false
			}
		}
		keys = append(keys, k)
	}
	for i := 0; i < rng.Intn(30); i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if a == b {
			continue
		}
		props := map[string]string{PropType: TypeEquivalence}
		if rng.Intn(3) > 0 {
			props = nil
		}
		if _, err := db.AddLink(DeriveLink, a, b, "t", []string{"outofdate"}, props); err != nil {
			return nil, false
		}
	}
	ids := db.LinkIDs()
	for i := 0; i < rng.Intn(5) && len(ids) > 0; i++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(3) {
		case 0:
			_ = db.DeleteLink(id)
		case 1:
			if l, err := db.GetLink(id); err == nil {
				_ = db.RetargetLink(id, l.To, keys[rng.Intn(len(keys))])
			}
		case 2:
			k := keys[rng.Intn(len(keys))]
			_, _ = db.PruneVersions(k.Block, k.View, 1)
		}
	}
	return keys, true
}

// walkFingerprint renders every walk from every root through the view —
// the byte-stable identity of the graph at one LSN.
func walkFingerprint(v *View, roots []Key) string {
	var sb bytes.Buffer
	for _, root := range roots {
		if !v.HasOID(root) {
			continue
		}
		fmt.Fprintf(&sb, "R%v=%v;", root, v.Reachable(root, FollowAllLinks))
		fmt.Fprintf(&sb, "U%v=%v;", root, v.Reachable(root, FollowUseLinks))
		fmt.Fprintf(&sb, "D%v=%v;", root, v.Dependents(root, FollowAllLinks))
		fmt.Fprintf(&sb, "Q%v=%v;", root, v.Equivalents(root))
	}
	return sb.String()
}

// lockedFingerprint is walkFingerprint through the locked walks of a
// database without MVCC.
func lockedFingerprint(db *DB, roots []Key) string {
	var sb bytes.Buffer
	for _, root := range roots {
		if !db.HasOID(root) {
			continue
		}
		fmt.Fprintf(&sb, "R%v=%v;", root, db.Reachable(root, FollowAllLinks))
		fmt.Fprintf(&sb, "U%v=%v;", root, db.Reachable(root, FollowUseLinks))
		fmt.Fprintf(&sb, "D%v=%v;", root, db.Dependents(root, FollowAllLinks))
		fmt.Fprintf(&sb, "Q%v=%v;", root, db.Equivalents(root))
	}
	return sb.String()
}

// TestQuickViewWalkMatchesLocked runs the same randomized link program on
// a plain database (locked walks) and an MVCC database (view walks over
// the reachability index) at 1, 4 and 64 shards, and checks the walks
// agree root by root.  It also records (lsn, fingerprint) pairs during
// the MVCC program and re-pins each LSN at the end — time travel must
// reproduce every intermediate graph byte for byte.
func TestQuickViewWalkMatchesLocked(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		shards := shards
		f := func(seed int64) bool {
			plain := NewDBWithShards(shards)
			keys, ok := graphProgramPinned(plain, rand.New(rand.NewSource(seed)), nil)
			if !ok {
				return false
			}

			mdb := NewDBWithShards(shards)
			mdb.EnableMVCC()
			type pin struct {
				lsn int64
				fp  string
			}
			var pins []pin
			mkeys, ok := graphProgramPinned(mdb, rand.New(rand.NewSource(seed)), func(sofar []Key) {
				v := mdb.ReadView()
				pins = append(pins, pin{v.LSN(), walkFingerprint(v, sofar)})
				v.Close()
			})
			if !ok || len(mkeys) != len(keys) {
				return false
			}

			// Final state: locked walks on the plain DB == view walks on
			// the MVCC DB == the branched DB methods on the MVCC DB.
			want := lockedFingerprint(plain, keys)
			v := mdb.ReadView()
			got := walkFingerprint(v, mkeys)
			v.Close()
			if got != want {
				t.Logf("shards=%d seed=%d: view walk diverges from locked walk\nlocked: %s\nview:   %s", shards, seed, want, got)
				return false
			}
			if got := lockedFingerprint(mdb, mkeys); got != want {
				t.Logf("shards=%d seed=%d: branched DB methods diverge", shards, seed)
				return false
			}

			// Time travel: every recorded LSN still reproduces its
			// fingerprint (reclamation cannot strike: nothing trims
			// without ReclaimVersions and these programs stay tiny).
			for _, p := range pins {
				pv, err := mdb.ReadViewAt(p.lsn)
				if err != nil {
					t.Logf("shards=%d seed=%d: ReadViewAt(%d): %v", shards, seed, p.lsn, err)
					return false
				}
				re := walkFingerprint(pv, mkeys)
				pv.Close()
				if re != p.fp {
					t.Logf("shards=%d seed=%d: time travel to %d diverges\nthen: %s\nnow:  %s", shards, seed, p.lsn, p.fp, re)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("shards=%d: %v", shards, err)
		}
	}
}

// graphProgramPinned is graphProgram plus a second mutation phase, with a
// checkpoint hook (nil to skip) invoked between the phases and at the
// end, handed the keys created so far — so pinned LSNs sit strictly
// inside the version history, not only at its head.  The random stream
// consumed is identical whether or not checkpoints are taken.
func graphProgramPinned(db *DB, rng *rand.Rand, checkpoint func([]Key)) ([]Key, bool) {
	keys, ok := graphProgram(db, rng)
	if !ok {
		return nil, false
	}
	if checkpoint != nil {
		checkpoint(keys)
	}
	for i := 0; i < rng.Intn(8); i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if a == b {
			continue
		}
		// A phase-1 prune may have removed either endpoint; that failure
		// is part of the program (identical on every database).
		if _, err := db.AddLink(DeriveLink, a, b, "t2", nil, nil); err != nil && !errors.Is(err, ErrNotFound) {
			return nil, false
		}
	}
	ids := db.LinkIDs()
	for i := 0; i < rng.Intn(3) && len(ids) > 0; i++ {
		_ = db.DeleteLink(ids[rng.Intn(len(ids))])
	}
	if checkpoint != nil {
		checkpoint(keys)
	}
	return keys, true
}

// TestGraphIndexAfterRebuild corrupts an adjacency posting in place and
// checks that RebuildComponents' audit pass repairs it: view walks match
// the locked walks again afterwards.
func TestGraphIndexAfterRebuild(t *testing.T) {
	db := NewDBWithShards(4)
	db.EnableMVCC()
	rng := rand.New(rand.NewSource(7))
	keys, ok := graphProgram(db, rng)
	if !ok {
		t.Fatal("program failed")
	}
	plain := NewDBWithShards(4)
	if _, ok := graphProgram(plain, rand.New(rand.NewSource(7))); !ok {
		t.Fatal("program failed")
	}
	want := lockedFingerprint(plain, keys)

	// Sanity: index agrees before the corruption.
	v := db.ReadView()
	if got := walkFingerprint(v, keys); got != want {
		t.Fatalf("index diverges before corruption:\nwant %s\ngot  %s", want, got)
	}
	v.Close()

	// Corrupt: overwrite one linked key's out-posting with a tombstone, as
	// if an incremental update had been lost.
	var victim Key
	for _, k := range keys {
		if len(db.LinksFrom(k)) > 0 {
			victim = k
			break
		}
	}
	if victim == (Key{}) {
		t.Skip("program produced no linked key")
	}
	sh := db.shards[db.shardIndex(victim.Block)]
	bogus := &hist[[]*Link]{}
	bogus.push(db.mvcc.epoch.Load(), nil, true)
	sh.hist.Load().out.Store(victim, bogus)

	v = db.ReadView()
	broken := walkFingerprint(v, keys)
	v.Close()
	if broken == want {
		t.Fatalf("corruption was not observable; test is vacuous")
	}

	db.RebuildComponents()

	v = db.ReadView()
	repaired := walkFingerprint(v, keys)
	v.Close()
	if repaired != want {
		t.Fatalf("RebuildComponents did not repair the index:\nwant %s\ngot  %s", want, repaired)
	}
}

// TestViewWalkRaceHammer runs 4 writers mutating the link graph against
// concurrent graph queries that pin views, walk twice (byte-stability on
// one view) and re-pin the same LSN (byte-stability across pins).  Run
// with -race this is the zero-lock proof: a view walk that touched a
// shard lock or shared mutable state would trip the detector.
func TestViewWalkRaceHammer(t *testing.T) {
	db := NewDBWithShards(8)
	var pool []Key
	for i := 0; i < 24; i++ {
		k, err := db.NewVersion(fmt.Sprintf("blk%02d", i%8), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, k)
	}
	db.EnableMVCC()

	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []LinkID
			// Capped op count and a bounded live-link population: an
			// unbounded writer grows postings so fast the readers' walks
			// slow quadratically and the test never converges.
			for i := 0; i < 4000 && !stop.Load(); i++ {
				a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
				if a == b {
					continue
				}
				op := rng.Intn(4)
				if len(mine) > 64 {
					op = 2
				}
				switch op {
				case 0, 1:
					if id, err := db.AddLink(DeriveLink, a, b, "t", nil, nil); err == nil {
						mine = append(mine, id)
					}
				case 2:
					if len(mine) > 0 {
						j := rng.Intn(len(mine))
						_ = db.DeleteLink(mine[j])
						mine = append(mine[:j], mine[j+1:]...)
					}
				case 3:
					if len(mine) > 0 {
						id := mine[rng.Intn(len(mine))]
						if l, err := db.GetLink(id); err == nil {
							_ = db.RetargetLink(id, l.To, pool[rng.Intn(len(pool))])
						}
					}
				}
			}
		}(w)
	}

	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 60; i++ {
				v := db.ReadView()
				f1 := walkFingerprint(v, pool)
				f2 := walkFingerprint(v, pool)
				if f1 != f2 {
					t.Errorf("reader %d: same view, different bytes", r)
					v.Close()
					return
				}
				lsn := v.LSN()
				v.Close()
				if v2, err := db.ReadViewAt(lsn); err == nil {
					f3 := walkFingerprint(v2, pool)
					v2.Close()
					if f3 != f1 {
						t.Errorf("reader %d: re-pinned lsn %d, different bytes", r, lsn)
						return
					}
				}
			}
		}(r)
	}

	// Readers bound the test: writers hammer until every reader has done
	// its rounds against a live, churning graph.
	readers.Wait()
	stop.Store(true)
	writers.Wait()
}
