package load

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFixedRateSchedule(t *testing.T) {
	s := FixedRate{Rate: 100, D: 2 * time.Second}
	if got := s.Arrivals(); got != 200 {
		t.Fatalf("arrivals %d", got)
	}
	if s.At(0) != 0 {
		t.Errorf("At(0)=%v", s.At(0))
	}
	prev := time.Duration(-1)
	for i := 0; i < s.Arrivals(); i++ {
		at := s.At(i)
		if at <= prev {
			t.Fatalf("At not increasing at %d: %v <= %v", i, at, prev)
		}
		if at >= s.Span() {
			t.Fatalf("At(%d)=%v past span %v", i, at, s.Span())
		}
		prev = at
	}
}

func TestRampSchedule(t *testing.T) {
	r := Ramp{From: 50, To: 150, D: 4 * time.Second}
	if got := r.Arrivals(); got != 400 { // (50+150)/2 * 4
		t.Fatalf("arrivals %d", got)
	}
	d := r.D.Seconds()
	prev := time.Duration(-1)
	for i := 0; i < r.Arrivals(); i++ {
		at := r.At(i)
		if at <= prev {
			t.Fatalf("At not increasing at %d: %v <= %v", i, at, prev)
		}
		prev = at
		// Round trip: the cumulative arrival count at the intended time
		// recovers the index.
		ts := at.Seconds()
		n := r.From*ts + (r.To-r.From)*ts*ts/(2*d)
		if math.Abs(n-float64(i)) > 1e-6 {
			t.Fatalf("N(At(%d)) = %v", i, n)
		}
	}
	if last := r.At(r.Arrivals() - 1); last >= r.D {
		t.Errorf("last arrival %v past span %v", last, r.D)
	}
	// A flat ramp degrades to the fixed-rate solution.
	flat := Ramp{From: 100, To: 100, D: time.Second}
	if at := flat.At(50); math.Abs(at.Seconds()-0.5) > 1e-9 {
		t.Errorf("flat ramp At(50)=%v", at)
	}
}

// TestOpenLoopNoCoordinatedOmission is the harness's reason to exist:
// with every virtual user artificially stalled far past the arrival
// interval, the dispatcher must keep the clock (finish on schedule),
// account for every arrival as dispatched-or-dropped, and the measured
// latencies — taken from the INTENDED arrival times — must surface the
// queueing delay a closed-loop generator would silently absorb.
func TestOpenLoopNoCoordinatedOmission(t *testing.T) {
	const (
		rate    = 200.0
		span    = time.Second
		stall   = 50 * time.Millisecond // per-op service time, 2 workers: capacity 40/s << 200/s
		workers = 2
		backlog = 16
	)
	sched := FixedRate{Rate: rate, D: span}
	queue := make(chan opTicket, backlog)
	var hist Histogram
	var mu sync.Mutex
	var completed atomic.Int64
	epoch := time.Now().Add(20 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range queue {
				time.Sleep(stall) // the wedged handler
				lat := time.Since(epoch.Add(tk.due))
				mu.Lock()
				hist.Record(lat)
				mu.Unlock()
				completed.Add(1)
			}
		}()
	}
	start := time.Now()
	st := openLoop(epoch, sched, func(int) string { return OpState }, queue, nil)
	dispatchWall := time.Since(start)
	close(queue)
	wg.Wait()

	if st.Dispatched+st.Dropped != int64(sched.Arrivals()) {
		t.Fatalf("accounting leak: %d dispatched + %d dropped != %d arrivals",
			st.Dispatched, st.Dropped, sched.Arrivals())
	}
	if st.Dropped == 0 {
		t.Fatal("a saturated run must surface drops, got none")
	}
	if completed.Load() != st.Dispatched {
		t.Fatalf("completed %d != dispatched %d", completed.Load(), st.Dispatched)
	}
	// The clock never stalls: the dispatcher finishes within the span
	// plus scheduling slack, no matter how wedged the workers are.
	if maxWall := span + span/2; dispatchWall > maxWall {
		t.Errorf("dispatcher stalled with the workers: wall %v > %v", dispatchWall, maxWall)
	}
	// Queueing delay is charged to the ops: with a full backlog ahead of
	// every op, median latency must far exceed the 50ms service time.  A
	// coordinated-omission-blind generator would report ~stall here.
	if p50 := hist.Quantile(0.50); p50 < 2*stall {
		t.Errorf("p50 %v does not surface queueing (service time %v)", p50, stall)
	}
}

func TestScheduleForScenario(t *testing.T) {
	fixed, err := scheduleFor(Scenario{Name: "f", Rate: 10, Duration: Dur{time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fixed.(FixedRate); !ok {
		t.Fatalf("want FixedRate, got %T", fixed)
	}
	ramp, err := scheduleFor(Scenario{Name: "r", Rate: 10, RampTo: 100, Duration: Dur{time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ramp.(Ramp); !ok {
		t.Fatalf("want Ramp, got %T", ramp)
	}
	if _, err := scheduleFor(Scenario{Name: "bad", Rate: 0, Duration: Dur{time.Second}}); err == nil {
		t.Error("zero rate accepted")
	}
}
