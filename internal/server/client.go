package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/meta"
	"repro/internal/wire"
)

// Client is a wrapper-program connection to the project server — the
// library behind the postEvent command of section 3.1.
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer

	// User attributes subsequent requests to a designer.
	User string
}

// Dial connects to a project server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// Close terminates the connection politely.
func (c *Client) Close() error {
	_, _ = c.roundTrip(wire.Request{Verb: wire.VerbQuit})
	return c.conn.Close()
}

// roundTrip sends one request and reads the complete response.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	if req.User == "" {
		req.User = c.User
	}
	if _, err := c.w.WriteString(req.Encode() + "\n"); err != nil {
		return wire.Response{}, fmt.Errorf("client: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return wire.Response{}, fmt.Errorf("client: send: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return wire.Response{}, fmt.Errorf("client: recv: %w", err)
		}
		return wire.Response{}, fmt.Errorf("client: connection closed")
	}
	resp, multi, err := wire.ParseResponseHeader(c.r.Text())
	if err != nil {
		return wire.Response{}, err
	}
	for multi {
		if !c.r.Scan() {
			return wire.Response{}, fmt.Errorf("client: truncated response")
		}
		content, done, err := wire.ParseBodyLine(c.r.Text())
		if err != nil {
			return wire.Response{}, err
		}
		if done {
			break
		}
		resp.Body = append(resp.Body, content)
	}
	return resp, nil
}

// do performs a request and converts ERR responses into errors.
func (c *Client) do(verb string, args ...string) (wire.Response, error) {
	resp, err := c.roundTrip(wire.Request{Verb: verb, Args: args})
	if err != nil {
		return wire.Response{}, err
	}
	if !resp.OK {
		return wire.Response{}, fmt.Errorf("client: %s: %s", verb, resp.Detail)
	}
	return resp, nil
}

// Ping checks the server is alive.
func (c *Client) Ping() error {
	_, err := c.do(wire.VerbPing)
	return err
}

// Sync blocks until the server's event queue has settled (meaningful in
// async-drain mode; an immediate no-op otherwise) and surfaces any drain
// error encountered since the last Sync.
func (c *Client) Sync() error {
	_, err := c.do(wire.VerbSync)
	return err
}

// PostEvent posts a design event:
//
//	client.PostEvent("ckin", "up", key, "logic sim passed")
func (c *Client) PostEvent(event, dir string, target meta.Key, args ...string) error {
	_, err := c.do(wire.VerbPost, append([]string{event, dir, target.String()}, args...)...)
	return err
}

// PostBatch posts many events in one round-trip — the BATCH verb.  The
// server posts every well-formed item, drains once, and reports per-item
// status.  It returns the number of accepted events; err is non-nil when
// the transport failed or any item was rejected (the per-item reasons are
// folded into the error).
func (c *Client) PostBatch(items []wire.BatchItem) (int, error) {
	if len(items) == 0 {
		return 0, nil
	}
	args := make([]string, len(items))
	for i, it := range items {
		args[i] = it.Encode()
	}
	resp, err := c.roundTrip(wire.Request{Verb: wire.VerbBatch, Args: args})
	if err != nil {
		return 0, err
	}
	posted := 0
	var failures []string
	for _, line := range resp.Body {
		fields, err := wire.Tokenize(line)
		if err != nil || len(fields) < 2 {
			continue
		}
		if fields[1] == "ok" {
			posted++
		} else {
			failures = append(failures, line)
		}
	}
	if !resp.OK {
		return posted, fmt.Errorf("client: BATCH: %s: %s", resp.Detail, strings.Join(failures, "; "))
	}
	return posted, nil
}

// Create makes a new version of (block, view) and returns its key.
func (c *Client) Create(block, view string) (meta.Key, error) {
	resp, err := c.do(wire.VerbCreate, block, view)
	if err != nil {
		return meta.Key{}, err
	}
	return meta.ParseKey(resp.Detail)
}

// Link relates two OIDs; class is "use" or "derive".
func (c *Client) Link(class string, from, to meta.Key) error {
	_, err := c.do(wire.VerbLink, class, from.String(), to.String())
	return err
}

// OIDState is the client-side decoding of a STATE response.
type OIDState struct {
	Key      meta.Key
	Ready    bool
	Props    map[string]string
	Blocking []string
}

// State queries the state of one OID.
func (c *Client) State(k meta.Key) (OIDState, error) {
	resp, err := c.do(wire.VerbState, k.String())
	if err != nil {
		return OIDState{}, err
	}
	st := OIDState{Key: k, Props: map[string]string{}}
	for _, line := range resp.Body {
		fields, err := wire.Tokenize(line)
		if err != nil || len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "ready":
			st.Ready = len(fields) > 1 && fields[1] == "true"
		case "prop":
			if len(fields) == 3 {
				st.Props[fields[1]] = fields[2]
			}
		case "blocking":
			st.Blocking = append(st.Blocking, strings.TrimPrefix(line, "blocking "))
		}
	}
	return st, nil
}

// Report retrieves the full project state report lines.
func (c *Client) Report() ([]string, error) {
	resp, err := c.do(wire.VerbReport)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Gap retrieves the not-ready report lines.
func (c *Client) Gap() ([]string, error) {
	resp, err := c.do(wire.VerbGap)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Snapshot stores a configuration server-side; root "*" captures the whole
// database.
func (c *Client) Snapshot(name, root string) (string, error) {
	resp, err := c.do(wire.VerbSnapshot, name, root)
	if err != nil {
		return "", err
	}
	return resp.Detail, nil
}

// Stats retrieves the server's one-line statistics summary.
func (c *Client) Stats() (string, error) {
	resp, err := c.do(wire.VerbStats)
	if err != nil {
		return "", err
	}
	return resp.Detail, nil
}

// Latest asks the server for the newest version of (block, view).
func (c *Client) Latest(block, view string) (meta.Key, error) {
	resp, err := c.do(wire.VerbLatest, block, view)
	if err != nil {
		return meta.Key{}, err
	}
	return meta.ParseKey(resp.Detail)
}

// Prop reads one property of an OID; ok reports whether it is set.
func (c *Client) Prop(k meta.Key, name string) (value string, ok bool, err error) {
	resp, err := c.do(wire.VerbProp, k.String(), name)
	if err != nil {
		return "", false, err
	}
	if resp.Detail == "unset" {
		return "", false, nil
	}
	fields, err := wire.Tokenize(resp.Detail)
	if err != nil || len(fields) != 2 || fields[0] != "set" {
		return "", false, fmt.Errorf("client: PROP: bad response %q", resp.Detail)
	}
	return fields[1], true, nil
}

// Links lists the links incident to an OID, one formatted line per link.
func (c *Client) Links(k meta.Key) ([]string, error) {
	resp, err := c.do(wire.VerbLinks, k.String())
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Dot retrieves a Graphviz rendering from the server: kind is "flow" (the
// BluePrint diagram, Figure 5) or "state" (the live project state).
func (c *Client) Dot(kind string) (string, error) {
	resp, err := c.do(wire.VerbDot, kind)
	if err != nil {
		return "", err
	}
	return strings.Join(resp.Body, "\n") + "\n", nil
}

// Blueprint retrieves the canonical source of the loaded blueprint.
func (c *Client) Blueprint() (string, error) {
	resp, err := c.do(wire.VerbBlueprint)
	if err != nil {
		return "", err
	}
	return strings.Join(resp.Body, "\n") + "\n", nil
}
