package bpl

import (
	"strings"
	"unicode"
)

// Template is a value with $variable interpolation, e.g.
// "$oid changed by $user".  Assignment values, exec arguments, notify
// messages and post arguments are all templates.  Variables are resolved at
// run time against the engine's environment: built-ins like $oid, $arg,
// $user, $date, plus the properties of the target OID.
type Template struct {
	Parts []TemplatePart
}

// TemplatePart is either a literal chunk (Var == "") or a variable
// reference (Lit unused).
type TemplatePart struct {
	Lit string
	Var string
}

// LitTemplate returns a template that expands to the fixed string s.
func LitTemplate(s string) Template {
	if s == "" {
		return Template{}
	}
	return Template{Parts: []TemplatePart{{Lit: s}}}
}

// VarTemplate returns a template consisting of the single variable $name.
func VarTemplate(name string) Template {
	return Template{Parts: []TemplatePart{{Var: name}}}
}

// ParseTemplate scans a raw string for $variable references.  A variable is
// '$' followed by letters, digits and underscores.  The sequence \$
// produces a literal dollar sign.
func ParseTemplate(raw string) Template {
	var t Template
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			t.Parts = append(t.Parts, TemplatePart{Lit: lit.String()})
			lit.Reset()
		}
	}
	for i := 0; i < len(raw); {
		c := raw[i]
		switch {
		case c == '\\' && i+1 < len(raw) && raw[i+1] == '$':
			lit.WriteByte('$')
			i += 2
		case c == '$':
			j := i + 1
			for j < len(raw) && isVarRune(rune(raw[j])) {
				j++
			}
			if j == i+1 {
				// Lone '$': literal.
				lit.WriteByte('$')
				i++
				continue
			}
			flush()
			t.Parts = append(t.Parts, TemplatePart{Var: raw[i+1 : j]})
			i = j
		default:
			lit.WriteByte(c)
			i++
		}
	}
	flush()
	return t
}

func isVarRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

// LookupFunc resolves a $variable name to its value.  Unknown variables
// should return "".
type LookupFunc func(name string) string

// Expand substitutes every variable using lookup and returns the result.
func (t Template) Expand(lookup LookupFunc) string {
	var sb strings.Builder
	for _, p := range t.Parts {
		if p.Var != "" {
			if lookup != nil {
				sb.WriteString(lookup(p.Var))
			}
		} else {
			sb.WriteString(p.Lit)
		}
	}
	return sb.String()
}

// IsConst reports whether the template contains no variables.
func (t Template) IsConst() bool {
	for _, p := range t.Parts {
		if p.Var != "" {
			return false
		}
	}
	return true
}

// Vars returns the variable names referenced, in order of appearance,
// without deduplication.
func (t Template) Vars() []string {
	var out []string
	for _, p := range t.Parts {
		if p.Var != "" {
			out = append(out, p.Var)
		}
	}
	return out
}

// Source renders the template in canonical BluePrint syntax: a bare
// identifier when possible, a bare $var for a single-variable template, and
// a quoted string otherwise.  Parsing the result reproduces the template.
func (t Template) Source() string {
	raw := t.raw()
	if len(t.Parts) == 1 && t.Parts[0].Var != "" {
		return "$" + t.Parts[0].Var
	}
	if t.IsConst() && raw != "" && isBareIdent(raw) {
		return raw
	}
	return quote(raw)
}

// raw renders the template in string-literal body form, with variables as
// $name and literal dollars escaped.
func (t Template) raw() string {
	var sb strings.Builder
	for _, p := range t.Parts {
		if p.Var != "" {
			sb.WriteByte('$')
			sb.WriteString(p.Var)
		} else {
			sb.WriteString(strings.ReplaceAll(p.Lit, "$", `\$`))
		}
	}
	return sb.String()
}

// isBareIdent reports whether s lexes as a single identifier token and is
// not a keyword that would confuse the action parser.
func isBareIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) && !unicode.IsDigit(r) {
			return false
		}
		if !isIdentRune(r) {
			return false
		}
	}
	switch s {
	case "done", "do", "when", "exec", "post", "notify", "endview", "endblueprint":
		return false
	}
	return true
}

// quote renders s as a BluePrint string literal.
func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			// A backslash in the raw form is only produced by \$; keep it.
			sb.WriteByte('\\')
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
