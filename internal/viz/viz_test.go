package viz

import (
	"strings"
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
)

func edtc(t *testing.T) (*bpl.Blueprint, *engine.Engine) {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	return bp, eng
}

func TestFlowDOTRegeneratesFigure5(t *testing.T) {
	bp, _ := edtc(t)
	dot := FlowDOT(bp)
	// The five tracked views of Figure 5 appear as nodes.
	for _, v := range []string{"HDL_model", "synth_lib", "schematic", "netlist", "layout"} {
		if !strings.Contains(dot, `"`+v+`"`) {
			t.Errorf("view %s missing from DOT:\n%s", v, dot)
		}
	}
	// The default view is policy, not a flow node.
	if strings.Contains(dot, `"default" [`) {
		t.Error("default view drawn as a node")
	}
	// The figure's edges: derived HDL_model->schematic, depend_on
	// synth_lib->schematic, derived schematic->netlist, equivalence
	// schematic->layout, hierarchy self-loop on schematic.
	for _, e := range []string{
		`"HDL_model" -> "schematic"`,
		`"synth_lib" -> "schematic"`,
		`"schematic" -> "netlist"`,
		`"schematic" -> "layout"`,
		`"schematic" -> "schematic"`,
	} {
		if !strings.Contains(dot, e) {
			t.Errorf("edge %s missing from DOT", e)
		}
	}
	// Edge labels carry the relationship types of the figure.
	for _, label := range []string{"derived", "depend_on", "equivalence", "hierarchy"} {
		if !strings.Contains(dot, label) {
			t.Errorf("label %s missing", label)
		}
	}
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(dot, "}\n") {
		t.Error("not a DOT document")
	}
}

func TestFlowDOTDeterministic(t *testing.T) {
	bp, _ := edtc(t)
	if FlowDOT(bp) != FlowDOT(bp) {
		t.Error("FlowDOT not deterministic")
	}
}

func TestStateDOTColors(t *testing.T) {
	bp, eng := edtc(t)
	sch, err := eng.CreateOID("CPU", "schematic", "v")
	if err != nil {
		t.Fatal(err)
	}
	hdl, err := eng.CreateOID("CPU", "HDL_model", "v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateLink(meta.DeriveLink, hdl, sch); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	dot := StateDOT(eng.DB(), bp)
	if !strings.Contains(dot, "lightcoral") {
		t.Error("blocked schematic not coloured red")
	}
	if !strings.Contains(dot, "lightgrey") {
		t.Error("let-less HDL model not grey")
	}
	if !strings.Contains(dot, `"CPU,HDL_model,1" -> "CPU,schematic,1"`) {
		t.Errorf("link edge missing:\n%s", dot)
	}
	// Satisfy the schematic; it turns green.
	for n, v := range map[string]string{"nl_sim_res": "good", "lvs_res": "is_equiv"} {
		if err := eng.DB().SetProp(sch, n, v); err != nil {
			t.Fatal(err)
		}
	}
	dot = StateDOT(eng.DB(), bp)
	if !strings.Contains(dot, "palegreen") {
		t.Error("ready schematic not green")
	}
}

func TestStateDOTOnlyLatestVersions(t *testing.T) {
	bp, eng := edtc(t)
	if _, err := eng.CreateOID("CPU", "HDL_model", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateOID("CPU", "HDL_model", "v"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	dot := StateDOT(eng.DB(), bp)
	if strings.Contains(dot, "CPU,HDL_model,1") {
		t.Error("old version drawn")
	}
	if !strings.Contains(dot, "CPU,HDL_model,2") {
		t.Error("latest version missing")
	}
}

func TestFlowText(t *testing.T) {
	bp, _ := edtc(t)
	text := FlowText(bp)
	for _, want := range []string{
		"blueprint EDTC_example",
		"view schematic",
		"let state =",
		"when ckin",
		"from HDL_model",
		"hierarchy link propagates outofdate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("FlowText missing %q:\n%s", want, text)
		}
	}
}

func TestStateText(t *testing.T) {
	bp, eng := edtc(t)
	if _, err := eng.CreateOID("CPU", "schematic", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateOID("CPU", "HDL_model", "v"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	text := StateText(eng.DB(), bp)
	if !strings.Contains(text, "schematic (0/1 ready)") {
		t.Errorf("summary wrong:\n%s", text)
	}
	if !strings.Contains(text, "✗ CPU,schematic,1") {
		t.Errorf("blocked marker missing:\n%s", text)
	}
	if !strings.Contains(text, "HDL_model (1/1 ready)") {
		t.Errorf("ready view wrong:\n%s", text)
	}
}
