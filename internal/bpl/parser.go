package bpl

import "fmt"

// Parser builds a Blueprint from tokens.  The language is context
// sensitive: keywords are plain identifiers recognized by position, so view
// and property names may reuse words like "type" or "state".
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete BluePrint source file.
func Parse(src string) (*Blueprint, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	bp, err := p.parseBlueprint()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind != TokEOF {
		return nil, errAt(t.Line, t.Col, "unexpected %s after endblueprint", t)
	}
	return bp, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// atKeyword reports whether the current token is the given bare identifier.
func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokIdent && t.Text == kw
}

// expectKeyword consumes the given keyword identifier.
func (p *Parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.Kind != TokIdent || t.Text != kw {
		return errAt(t.Line, t.Col, "expected %q, found %s", kw, t)
	}
	p.advance()
	return nil
}

// expectIdent consumes and returns an identifier token.
func (p *Parser) expectIdent(what string) (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", errAt(t.Line, t.Col, "expected %s, found %s", what, t)
	}
	p.advance()
	return t.Text, nil
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return Token{}, errAt(t.Line, t.Col, "expected %s, found %s", kind, t)
	}
	p.advance()
	return t, nil
}

func (p *Parser) parseBlueprint() (*Blueprint, error) {
	if err := p.expectKeyword("blueprint"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("blueprint name")
	if err != nil {
		return nil, err
	}
	bp := &Blueprint{Name: name}
	for {
		switch {
		case p.atKeyword("view"):
			v, err := p.parseView()
			if err != nil {
				return nil, err
			}
			bp.Views = append(bp.Views, v)
		case p.atKeyword("endblueprint"):
			p.advance()
			return bp, nil
		default:
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "expected \"view\" or \"endblueprint\", found %s", t)
		}
	}
}

func (p *Parser) parseView() (*View, error) {
	p.advance() // "view"
	name, err := p.expectIdent("view name")
	if err != nil {
		return nil, err
	}
	v := &View{Name: name}
	for {
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, errAt(t.Line, t.Col, "expected view item, found %s", t)
		}
		switch t.Text {
		case "endview":
			p.advance()
			return v, nil
		case "property":
			d, err := p.parseProperty()
			if err != nil {
				return nil, err
			}
			v.Properties = append(v.Properties, d)
		case "let":
			d, err := p.parseLet()
			if err != nil {
				return nil, err
			}
			v.Lets = append(v.Lets, d)
		case "link_from":
			d, err := p.parseLinkFrom()
			if err != nil {
				return nil, err
			}
			d.TemplateID = fmt.Sprintf("%s#%d", v.Name, len(v.Links))
			v.Links = append(v.Links, d)
		case "use_link":
			d, err := p.parseUseLink()
			if err != nil {
				return nil, err
			}
			d.TemplateID = fmt.Sprintf("%s#%d", v.Name, len(v.Links))
			v.Links = append(v.Links, d)
		case "when":
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			v.Rules = append(v.Rules, r)
		default:
			return nil, errAt(t.Line, t.Col,
				"expected \"property\", \"let\", \"link_from\", \"use_link\", \"when\" or \"endview\", found %s", t)
		}
	}
}

// parseProperty parses: property NAME default VALUE [copy|move]
func (p *Parser) parseProperty() (*PropertyDecl, error) {
	p.advance() // "property"
	name, err := p.expectIdent("property name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("default"); err != nil {
		return nil, err
	}
	def, err := p.parseConstValue("default value")
	if err != nil {
		return nil, err
	}
	d := &PropertyDecl{Name: name, Default: def}
	if p.atKeyword("copy") {
		p.advance()
		d.Inherit = InheritCopy
	} else if p.atKeyword("move") {
		p.advance()
		d.Inherit = InheritMove
	}
	return d, nil
}

// parseConstValue parses a single-token constant value: identifier or
// string literal.
func (p *Parser) parseConstValue(what string) (string, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent, TokString:
		p.advance()
		return t.Text, nil
	default:
		return "", errAt(t.Line, t.Col, "expected %s, found %s", what, t)
	}
}

// parseLet parses: let NAME = EXPR
func (p *Parser) parseLet() (*LetDecl, error) {
	p.advance() // "let"
	name, err := p.expectIdent("property name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &LetDecl{Name: name, Expr: e}, nil
}

// parseLinkFrom parses:
// link_from VIEW [move|copy] propagates EV(,EV)* [type NAME]
func (p *Parser) parseLinkFrom() (*LinkDecl, error) {
	p.advance() // "link_from"
	from, err := p.expectIdent("parent view name")
	if err != nil {
		return nil, err
	}
	d := &LinkDecl{FromView: from}
	if err := p.parseLinkTail(d); err != nil {
		return nil, err
	}
	if p.atKeyword("type") {
		p.advance()
		ty, err := p.expectIdent("link type")
		if err != nil {
			return nil, err
		}
		d.Type = ty
	}
	return d, nil
}

// parseUseLink parses: use_link [move|copy] propagates EV(,EV)*
func (p *Parser) parseUseLink() (*LinkDecl, error) {
	p.advance() // "use_link"
	d := &LinkDecl{Use: true}
	if err := p.parseLinkTail(d); err != nil {
		return nil, err
	}
	return d, nil
}

// parseLinkTail parses the shared [move|copy] propagates EV(,EV)* clause.
func (p *Parser) parseLinkTail(d *LinkDecl) error {
	if p.atKeyword("move") {
		p.advance()
		d.Inherit = InheritMove
	} else if p.atKeyword("copy") {
		p.advance()
		d.Inherit = InheritCopy
	}
	if err := p.expectKeyword("propagates"); err != nil {
		return err
	}
	for {
		ev, err := p.expectIdent("event name")
		if err != nil {
			return err
		}
		d.Propagates = append(d.Propagates, ev)
		if p.cur().Kind != TokComma {
			return nil
		}
		p.advance()
	}
}

// parseRule parses: when EVENT do ACTION (';' ACTION)* done
func (p *Parser) parseRule() (*Rule, error) {
	p.advance() // "when"
	ev, err := p.expectIdent("event name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	r := &Rule{Event: ev}
	for {
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		r.Actions = append(r.Actions, a)
		t := p.cur()
		switch {
		case t.Kind == TokSemi:
			p.advance()
			// Tolerate a trailing semicolon before done.
			if p.atKeyword("done") {
				p.advance()
				return r, nil
			}
		case t.Kind == TokIdent && t.Text == "done":
			p.advance()
			return r, nil
		default:
			return nil, errAt(t.Line, t.Col, "expected ';' or \"done\", found %s", t)
		}
	}
}

func (p *Parser) parseAction() (Action, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, errAt(t.Line, t.Col, "expected action, found %s", t)
	}
	switch t.Text {
	case "exec":
		p.advance()
		a := &ExecAction{}
		for p.atValue() {
			a.Argv = append(a.Argv, p.parseValue())
		}
		if len(a.Argv) == 0 {
			return nil, errAt(t.Line, t.Col, "exec requires a script argument")
		}
		return a, nil
	case "notify":
		p.advance()
		if !p.atValue() {
			return nil, errAt(t.Line, t.Col, "notify requires a message")
		}
		return &NotifyAction{Message: p.parseValue()}, nil
	case "post":
		p.advance()
		ev, err := p.expectIdent("event name")
		if err != nil {
			return nil, err
		}
		dirTok := p.cur()
		dirWord, err := p.expectIdent("direction (up or down)")
		if err != nil {
			return nil, err
		}
		dir, err := ParseDirection(dirWord)
		if err != nil {
			return nil, errAt(dirTok.Line, dirTok.Col, "direction %q: want up or down", dirWord)
		}
		a := &PostAction{Event: ev, Dir: dir}
		if p.atKeyword("to") {
			p.advance()
			view, err := p.expectIdent("target view name")
			if err != nil {
				return nil, err
			}
			a.ToView = view
		}
		for p.atValue() {
			a.Args = append(a.Args, p.parseValue())
		}
		return a, nil
	default:
		// Property assignment: NAME = VALUE
		name := t.Text
		p.advance()
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		vt := p.cur()
		if !p.atValue() {
			return nil, errAt(vt.Line, vt.Col, "expected value, found %s", vt)
		}
		return &AssignAction{Prop: name, Value: p.parseValue()}, nil
	}
}

// atValue reports whether the current token can begin a value template:
// a string, a $variable, or an identifier other than the terminators
// "done" and action keywords that would start the next statement.
func (p *Parser) atValue() bool {
	t := p.cur()
	switch t.Kind {
	case TokString, TokVar:
		return true
	case TokIdent:
		return t.Text != "done"
	default:
		return false
	}
}

// parseValue converts the current value token into a Template.
func (p *Parser) parseValue() Template {
	t := p.advance()
	switch t.Kind {
	case TokString:
		return ParseTemplate(t.Text)
	case TokVar:
		return VarTemplate(t.Text)
	default:
		return LitTemplate(t.Text)
	}
}

// ---------------------------------------------------------------------------
// Expressions

// parseExpr parses an or-expression (lowest precedence).
func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.atKeyword("not") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokLParen {
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		// A parenthesized operand may still be compared:
		// (($a) == b) is unusual but (expr) alone is common.
		return p.maybeCmpWrapped(inner)
	}
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokEq, TokNeq:
		neq := p.advance().Kind == TokNeq
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Neq: neq, L: l, R: r}, nil
	default:
		return &BoolExpr{X: l}, nil
	}
}

// maybeCmpWrapped handles the common paper form "($a == b)" where the
// parenthesized unit is itself the comparison: after the closing paren no
// further comparison is allowed, so the inner expression is returned as-is.
func (p *Parser) maybeCmpWrapped(inner Expr) (Expr, error) {
	switch p.cur().Kind {
	case TokEq, TokNeq:
		// "( ... ) == x" — only legal if the inner expression is a bare
		// operand.
		be, ok := inner.(*BoolExpr)
		if !ok {
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "cannot compare a compound expression")
		}
		neq := p.advance().Kind == TokNeq
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Neq: neq, L: be.X, R: r}, nil
	default:
		return inner, nil
	}
}

func (p *Parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.Kind {
	case TokVar:
		p.advance()
		return Operand{Var: t.Text}, nil
	case TokString:
		p.advance()
		return Operand{Lit: t.Text}, nil
	case TokIdent:
		if t.Text == "and" || t.Text == "or" || t.Text == "not" || t.Text == "done" {
			return Operand{}, errAt(t.Line, t.Col, "expected operand, found %s", t)
		}
		p.advance()
		return Operand{Lit: t.Text}, nil
	default:
		return Operand{}, errAt(t.Line, t.Col, "expected operand, found %s", t)
	}
}
