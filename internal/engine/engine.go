package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bpl"
	"repro/internal/exec"
	"repro/internal/journal"
	"repro/internal/meta"
)

// ErrStepLimit reports that Drain stopped because rule-posted events kept
// generating work beyond the configured bound — almost always a feedback
// loop in the blueprint (an event whose rules post the same event back).
var ErrStepLimit = errors.New("engine: step limit exceeded (event feedback loop in blueprint?)")

// policy pairs a loaded blueprint with its compiled index.  The two are
// immutable and always swapped together, so a single atomic pointer load
// gives a delivery a consistent view of the project rules.
type policy struct {
	bp  *bpl.Blueprint
	idx *bpl.Index
}

// Engine is the BluePrint run-time engine bound to one meta-database and
// one loaded blueprint.  It is safe for concurrent use.  Event processing
// is organized in waves (one posted event and its propagation closure):
// deliveries within a wave are FIFO, as in the paper; waves whose
// footprints — the connected component of their seed block under
// propagating links, per the compiled link templates' PROPAGATE stamps —
// are disjoint drain concurrently on a bounded worker pool, while
// overlapping waves run one after another in enqueue order.
type Engine struct {
	db *meta.DB

	// pol is the current policy.  Drain captures it once per delivery at
	// dequeue time: an event processed after SetBlueprint runs under the
	// new rules even if it was posted under the old ones (the paper's
	// policy loosening applies to queued work), while a delivery already
	// in flight finishes under the policy it started with.
	pol atomic.Pointer[policy]

	mu      sync.Mutex
	cond    *sync.Cond // signaled on queue/worker transitions (see waiters)
	waiters int        // goroutines blocked in cond.Wait; gates Broadcast

	// waves[whead:] holds the incomplete waves in enqueue (id) order.
	// Completion usually retires the head (one slot advance); a wave
	// finishing out of order — possible only with parallel workers — is
	// nilled in place and skipped by the scans.  nwaves counts the live
	// entries.
	waves  []*wave
	whead  int
	nwaves int

	pending  []func() // deferred exec-rule invocations (external tools)
	draining bool
	drainGen int64 // bumps when a drain retires; journaled Drain waits on it
	active   int   // waves currently claimed by drain workers
	nextWave int64
	compGen  int64 // component generation the cached roots reflect

	// compRebuild requests an exact union-find rebuild at the next safe
	// drain start (set by SetBlueprint; link churn triggers one too).  The
	// merge-only partition only ever coarsens, so long-lived graphs lose
	// drain parallelism until a rebuild re-splits what pruned or
	// retargeted links no longer connect.
	compRebuild atomic.Bool

	// rootCache memoizes seed block → component root between component
	// merges, so repeated waves on the same block skip the database's
	// component lock; lastSeed/lastRoot are a one-entry cache in front of
	// it for the common post-to-one-block loop.  Guarded by mu; cleared
	// when compGen moves.
	rootCache map[string]string
	lastSeed  string
	lastRoot  string

	stats counters

	// drain is the accounting of the in-flight Drain call (delivery count,
	// stop flag).  Drain is exclusive, so one embedded instance serves every
	// call without a per-drain allocation.
	drain drainState

	executor exec.Executor
	// journal is an atomic pointer because a follower promotion attaches
	// it to an already-serving engine: Drain and enqueueLocked read it
	// without coordination with AttachJournal.
	journal  atomic.Pointer[journal.Writer]
	tracer   Tracer
	tracing  bool // false iff tracer is a NopTracer; gates all entry construction
	clock    func() time.Time
	user     string
	maxSteps int64
	dedup    bool
	maxHops  int
	workers  int // drain worker bound; 0 = min(GOMAXPROCS, maxDrainWorkers)
}

// Option configures an Engine.
type Option func(*Engine)

// WithExecutor sets the executor for exec and notify actions.  The default
// discards them.
func WithExecutor(x exec.Executor) Option { return func(e *Engine) { e.executor = x } }

// WithTracer sets the audit tracer.  The default discards trace entries.
func WithTracer(t Tracer) Option { return func(e *Engine) { e.tracer = t } }

// WithJournal attaches an append-only journal.  The journal's database
// recorder captures the mutations themselves (the engine's deliveries
// reach it through the meta.DB methods they call); the engine adds the
// posted-event audit stream — every event entering the queue, the same
// stream a Tracer sees as TraceEnqueue — and, crucially, the durability
// point: Drain commits the journal after the queue settles, so every
// mutation a drain performed is on disk before PostAndDrain returns.
// The journal must be the one whose Open recovered e's database.
func WithJournal(j *journal.Writer) Option { return func(e *Engine) { e.journal.Store(j) } }

// AttachJournal attaches a journal to a live engine — the promotion path,
// where a read-only follower's engine (journal-less by construction: the
// replication loop owned the writer) becomes a primary's.  Safe against
// concurrent Drain and Post; events enqueued after the attach are
// journaled, earlier ones arrived via replication and already are.
func (e *Engine) AttachJournal(j *journal.Writer) { e.journal.Store(j) }

// WithClock sets the time source used for $date; tests inject a fixed
// clock for determinism.
func WithClock(c func() time.Time) Option { return func(e *Engine) { e.clock = c } }

// WithUser sets the default user for events that carry none.
func WithUser(u string) Option { return func(e *Engine) { e.user = u } }

// WithMaxSteps bounds the number of deliveries one Drain may process.
func WithMaxSteps(n int64) Option { return func(e *Engine) { e.maxSteps = n } }

// WithWaveDedup toggles the per-wave visited set that makes each event
// instance visit every OID at most once.  It exists for ablation
// measurements only: with dedup off, propagation on graphs with shared
// substructure (diamonds) re-delivers along every path, bounded only by
// the hop limit.  Production engines must keep it on.
func WithWaveDedup(on bool) Option { return func(e *Engine) { e.dedup = on } }

// WithMaxHops bounds propagation depth per wave; it is the termination
// backstop when wave dedup is ablated away.
func WithMaxHops(n int) Option { return func(e *Engine) { e.maxHops = n } }

// WithDrainWorkers bounds the drain worker pool.  n = 1 forces strictly
// sequential draining (every wave in enqueue order); the default (0) uses
// min(GOMAXPROCS, 8).  Whatever the bound, waves whose footprints overlap
// never start concurrently, so for a fixed link topology results are
// independent of n.  One caveat survives, inherent to live scheduling: a
// propagating link created *while a drain is in flight* can join the
// components of two waves that are already running, and those in-flight
// waves are not re-serialized — the same class of interleaving the
// sequential engine admitted between a drain and concurrent DB writers.
// Waves scheduled after the merge observe it (the scheduler refreshes
// every cached footprint when the component generation moves).
func WithDrainWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// New creates an engine over db with the given blueprint.  The blueprint
// must be free of analyzer errors.
func New(db *meta.DB, bp *bpl.Blueprint, opts ...Option) (*Engine, error) {
	if ds := bpl.Analyze(bp); bpl.HasErrors(ds) {
		for _, d := range ds {
			if d.Sev == bpl.SevError {
				return nil, fmt.Errorf("engine: blueprint %s: %s", bp.Name, d)
			}
		}
	}
	e := &Engine{
		db:       db,
		executor: exec.Nop{},
		tracer:   NopTracer{},
		clock:    time.Now,
		user:     "nobody",
		maxSteps: 1_000_000,
		dedup:    true,
		maxHops:  64,
	}
	e.pol.Store(&policy{bp: bp, idx: bp.Index()})
	e.cond = sync.NewCond(&e.mu)
	for _, o := range opts {
		o(e)
	}
	if e.tracer == nil {
		e.tracer = NopTracer{}
	}
	_, nop := e.tracer.(NopTracer)
	e.tracing = !nop
	return e, nil
}

// WaitIdle blocks until the engine has no queued deliveries, no deferred
// exec invocations, and no Drain in progress.  Callers running the engine
// asynchronously (a server with a background drainer) use it to observe
// quiescence.
func (e *Engine) WaitIdle() {
	e.mu.Lock()
	for e.nwaves > 0 || e.active > 0 || len(e.pending) > 0 || e.draining {
		e.waitLocked()
	}
	e.mu.Unlock()
}

// waitLocked blocks on the engine condition with waiter accounting, so
// signalers can skip the Broadcast when nobody listens.  Callers hold e.mu.
func (e *Engine) waitLocked() {
	e.waiters++
	e.cond.Wait()
	e.waiters--
}

// wakeLocked wakes blocked waiters, if any.  Callers hold e.mu.
func (e *Engine) wakeLocked() {
	if e.waiters > 0 {
		e.cond.Broadcast()
	}
}

// DB returns the engine's meta-database.
func (e *Engine) DB() *meta.DB { return e.db }

// Blueprint returns the currently loaded blueprint.
func (e *Engine) Blueprint() *bpl.Blueprint { return e.pol.Load().bp }

// SetBlueprint replaces the project policy — the paper's re-initialization
// of the BluePrint mechanism for a new project phase ("loosening").  Queued
// events are preserved and will be processed under the new rules: Drain
// resolves the policy per delivery at dequeue time, so loosening takes
// effect for all not-yet-delivered events, including mid-drain.
func (e *Engine) SetBlueprint(bp *bpl.Blueprint) error {
	if ds := bpl.Analyze(bp); bpl.HasErrors(ds) {
		return fmt.Errorf("engine: blueprint %s has errors", bp.Name)
	}
	e.pol.Store(&policy{bp: bp, idx: bp.Index()})
	// A policy reload is the natural quiet point to re-derive the block
	// partition exactly: the old blueprint's propagation topology may have
	// merged components the new one (and link pruning since) no longer
	// justifies.  The rebuild itself runs at the next safe drain start.
	e.compRebuild.Store(true)
	return nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return e.stats.snapshot()
}

// QueueLen reports the number of pending deliveries.
func (e *Engine) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, w := range e.waves[e.whead:] {
		if w != nil {
			n += int(w.n.Load())
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Posting and draining

// Post validates an event and enqueues it for processing.  The target OID
// must exist.  Post does not process the queue; call Drain (or use
// PostAndDrain) to run the engine.
func (e *Engine) Post(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	if !e.db.HasOID(ev.Target) {
		return fmt.Errorf("engine: event %s: target %v: %w", ev.Name, ev.Target, meta.ErrNotFound)
	}
	if ev.User == "" {
		ev.User = e.user
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enqueueLocked(ev, false)
	return nil
}

// PostAndDrain posts one event and processes the queue to exhaustion.
func (e *Engine) PostAndDrain(ev Event) error {
	if err := e.Post(ev); err != nil {
		return err
	}
	return e.Drain()
}

// wavePool recycles wave descriptors (with their item arrays) once the
// wave's last delivery retires.  visitedPool recycles the per-wave visited
// sets, which are allocated lazily at the wave's first propagation — most
// events never cross a link and then need no set at all.  Sets that grew
// beyond maxPooledVisited are dropped instead of recycled: clearing a
// large-capacity map costs O(capacity) on every later small wave that
// draws it.
var (
	wavePool = sync.Pool{
		New: func() any { return new(wave) },
	}
	visitedPool = sync.Pool{
		New: func() any { return make(map[meta.Key]bool, 8) },
	}
)

const (
	maxPooledVisited = 64
	// maxRetainedQueue bounds the item capacity a recycled wave keeps; a
	// larger backing array (one huge wave) is dropped on completion instead
	// of holding burst-sized memory for the engine's lifetime.
	maxRetainedQueue = 4096
	// maxDrainWorkers caps the default drain pool.
	maxDrainWorkers = 8
)

// enqueueLocked starts a fresh wave holding one delivery.  Callers hold
// e.mu.
func (e *Engine) enqueueLocked(ev Event, skipRules bool) {
	e.nextWave++
	wv := wavePool.Get().(*wave)
	wv.id = e.nextWave
	wv.seed = ev.Target.Block
	wv.root = ""
	wv.rootSet = false
	wv.running = false
	wv.visited = nil
	wv.head = 0
	wv.items = append(wv.items[:0], queueItem{ev: ev, skipRules: skipRules})
	wv.n.Store(1)
	e.waves = append(e.waves, wv)
	e.nwaves++
	e.stats.posted.Add(1)
	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TraceEnqueue, OID: ev.Target.String(), Event: ev.Name})
	}
	if j := e.journal.Load(); j != nil {
		j.Record(meta.Record{Seq: e.db.Seq(), Op: meta.OpEvent,
			Args: append([]string{ev.Name, ev.Dir.String(), ev.Target.String(), ev.User}, ev.Args...)})
	}
	e.wakeLocked()
}

// recycleWave returns a fully delivered wave to the pool.
func recycleWave(w *wave) {
	if m := w.visited; m != nil && len(m) <= maxPooledVisited {
		clear(m)
		visitedPool.Put(m)
	}
	w.visited = nil
	if cap(w.items) > maxRetainedQueue {
		w.items = nil
	} else {
		w.items = w.items[:0]
	}
	w.head = 0
	w.n.Store(0)
	wavePool.Put(w)
}

// drainState is the shared accounting of one Drain call: the delivery
// counter and the stop flag every worker observes.
type drainState struct {
	steps atomic.Int64
	stop  atomic.Bool
}

// Drain processes queued events until the queue is empty.  Deliveries
// within one wave (a posted event and its propagation closure) are strictly
// first-in first-out, as in the paper.  Waves whose footprints are disjoint
// — seed blocks in different connected components under propagating links —
// are dispatched to a bounded worker pool and drain concurrently; waves
// with overlapping footprints run one after another in enqueue order, so
// the outcome is independent of the worker bound.  Rule-posted events start
// new waves at the queue tail.  Only one Drain runs at a time; concurrent
// calls return immediately so posters can call PostAndDrain freely.
//
// With a journal attached, Drain commits it after the queue settles — the
// durability point for everything the drain changed.  A call that yields
// to an already-running drain waits for that drain to retire and then
// retries, so it returns only once a drain pass of its own has covered
// the caller's events (closing the handoff window in which an event posted
// just as a drain exits would otherwise be acknowledged unprocessed); the
// commit then makes the effects durable before any "posted" response.
// The wait is for one drain generation at a time, not global idleness, so
// sustained traffic on other connections cannot starve the caller beyond
// what running the drain itself would cost.  Exec handlers must not call
// Drain from inside a delivery — post follow-up events instead, as the
// deferred-invocation design intends.
func (e *Engine) Drain() error {
	for {
		ran, err := e.drainQueue()
		j := e.journal.Load()
		if j == nil {
			return err
		}
		if ran || err != nil {
			if jerr := j.Commit(); err == nil {
				err = jerr
			}
			return err
		}
		// Yielded to an in-flight drain: wait for that drain to retire,
		// then retry.  If the queue is empty by then, the retry is a
		// trivial pass; if another goroutine grabs the baton first, we
		// wait out its generation too.
		e.mu.Lock()
		gen := e.drainGen
		for e.draining && e.drainGen == gen {
			e.waitLocked()
		}
		e.mu.Unlock()
	}
}

// drainQueue runs the drain loop; ran reports whether this call owned the
// drain (false when it yielded to one already in flight).
func (e *Engine) drainQueue() (ran bool, _ error) {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return false, nil
	}
	e.draining = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.draining = false
		e.drainGen++
		e.wakeLocked()
		e.mu.Unlock()
	}()

	e.maybeRebuildComponents()

	workers := e.workers
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), maxDrainWorkers)
	}
	d := &e.drain
	d.steps.Store(0)
	d.stop.Store(false)
	var inline *wave // dispatcher-run wave awaiting finalization
	var inlineDone bool
	for {
		e.mu.Lock()
		if inline != nil {
			// Finalize the wave the dispatcher just ran inline, in the
			// same lock round-trip that schedules the next one.
			recycle := e.finishWaveLocked(inline, inlineDone)
			inline = nil
			if recycle != nil {
				e.mu.Unlock()
				recycleWave(recycle)
				e.mu.Lock()
			}
		}
		if d.stop.Load() {
			// A worker hit the step limit.  Wait for the pool to retire;
			// undelivered waves stay queued, like the unprocessed tail of
			// the old FIFO queue.
			for e.active > 0 {
				e.waitLocked()
			}
			e.mu.Unlock()
			return true, fmt.Errorf("%w: after %d deliveries", ErrStepLimit, d.steps.Load()-1)
		}
		if w := e.scheduleLocked(workers, d); w != nil {
			// The dispatcher doubles as worker zero: the first runnable
			// wave runs inline, so a solitary wave pays no goroutine or
			// signaling cost.
			e.mu.Unlock()
			inlineDone = e.runWaveBody(w, d)
			inline = w
			continue
		}
		if e.nwaves == 0 && e.active == 0 {
			if len(e.pending) == 0 {
				e.mu.Unlock()
				return true, nil
			}
			// Dispatch deferred exec-rule invocations.  In the paper these
			// are external wrapper processes: the events they post arrive
			// after every in-flight wave has fully propagated, never
			// interleaved inside one.
			run := e.pending[0]
			e.pending = e.pending[1:]
			e.mu.Unlock()
			if d.steps.Add(1) > e.maxSteps {
				return true, fmt.Errorf("%w: after %d deliveries", ErrStepLimit, d.steps.Load()-1)
			}
			run()
			continue
		}
		// Workers are busy and nothing new is runnable; wait for a
		// completion or a fresh post.
		e.waitLocked()
		e.mu.Unlock()
	}
}

// schedConflictCap bounds how many consecutive conflicting waves one
// scheduling pass examines past the last claimed one.  When a long run of
// waves shares one footprint (a busy single-component project), scanning
// the whole tail every pass is O(queue) for nothing — after this many
// conflicts in a row the pass gives up looking for more parallelism.  The
// first pending wave never conflicts, so progress is unaffected; a
// disjoint wave deep behind a conflicting prefix is merely picked up a few
// passes later, as the prefix drains.
const schedConflictCap = 8

// scheduleLocked claims runnable waves: the first for the calling
// dispatcher (returned), every further one for a pooled goroutine, up to
// the worker bound.  A wave is runnable when no earlier incomplete wave
// shares its footprint root.  Callers hold e.mu.
func (e *Engine) scheduleLocked(workers int, d *drainState) *wave {
	if e.nwaves == 0 {
		return nil
	}
	// Links created since the roots were cached may have merged
	// components; when the generation moved, refresh every live wave's
	// root — including running ones, whose stale roots would otherwise
	// let a newly rooted overlapping wave slip past the conflict check.
	if gen := e.db.ComponentGen(); gen != e.compGen {
		clear(e.rootCache)
		e.lastSeed = ""
		e.compGen = gen
		for _, w := range e.waves[e.whead:] {
			if w != nil {
				w.root = e.rootLocked(w.seed)
				w.rootSet = true
			}
		}
	}
	var mine *wave
	conflicts := 0
	for i := e.whead; i < len(e.waves); i++ {
		w := e.waves[i]
		if w == nil {
			continue
		}
		if e.active >= workers || conflicts >= schedConflictCap {
			break
		}
		if w.running {
			continue
		}
		if !w.rootSet {
			w.root = e.rootLocked(w.seed)
			w.rootSet = true
		}
		if e.conflictsLocked(w, i) {
			conflicts++
			continue
		}
		conflicts = 0
		w.running = true
		e.active++
		if mine == nil {
			mine = w
		} else {
			go e.runWaveWorker(w, d)
		}
	}
	return mine
}

// componentRebuildChurn is the propagating-link removal count past which
// a drain start triggers an exact component rebuild.
const componentRebuildChurn = 64

// maybeRebuildComponents runs the periodic exact union-find rebuild at a
// drain start — the one point where rebuilding a partition that can SPLIT
// is safe.  Precondition (guaranteed by drainQueue): this goroutine owns
// the drain and no wave is running.  The rebuild additionally requires
// every queued wave to be a fresh seed (head 0, one item): a wave that
// already propagated — possible only when a previous drain stopped at the
// step limit — may hold deliveries that crossed links removed since, and
// its conservative pre-removal footprint must keep serializing it.
func (e *Engine) maybeRebuildComponents() {
	if !e.compRebuild.Load() && e.db.ComponentChurn() < componentRebuildChurn {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, w := range e.waves[e.whead:] {
		if w != nil && (w.head > 0 || len(w.items) != 1) {
			return // resumed mid-wave work queued; retry at the next drain
		}
	}
	e.compRebuild.Store(false)
	e.db.RebuildComponents()
}

// rootLocked resolves a seed block's component root through the engine's
// caches.  Callers hold e.mu.
func (e *Engine) rootLocked(seed string) string {
	if seed == e.lastSeed {
		return e.lastRoot
	}
	root, ok := e.rootCache[seed]
	if !ok {
		root = e.db.Component(seed)
		if e.rootCache == nil {
			e.rootCache = make(map[string]string)
		}
		e.rootCache[seed] = root
	}
	e.lastSeed, e.lastRoot = seed, root
	return root
}

// conflictsLocked reports whether an earlier incomplete wave shares the
// footprint root of e.waves[i].  The list holds incomplete waves in
// enqueue order, and every live wave before i has its root cached by the
// scheduling scan, so this is a prefix scan of string compares.  Callers
// hold e.mu.
func (e *Engine) conflictsLocked(w *wave, i int) bool {
	for j := e.whead; j < i; j++ {
		if x := e.waves[j]; x != nil && x.root == w.root {
			return true
		}
	}
	return false
}

// runWaveBody delivers a claimed wave's items FIFO until the wave is
// exhausted or the drain stops, and reports whether the wave completed.
// The wave is owned: items, head, visited and the hops scratch are touched
// only by this worker until the completion transition under e.mu.
func (e *Engine) runWaveBody(w *wave, d *drainState) bool {
	for !d.stop.Load() {
		if w.head >= len(w.items) {
			return true
		}
		// The consumed slot is zeroed to release its references.
		item := w.items[w.head]
		w.items[w.head] = queueItem{}
		w.head++
		w.n.Add(-1)
		if d.steps.Add(1) > e.maxSteps {
			// The dequeued item is dropped, not delivered, matching the
			// pre-parallel dequeue-at-limit behavior.
			d.stop.Store(true)
			return false
		}
		// The policy is resolved at dequeue time, not post time: see the
		// field comment on pol for the SetBlueprint semantics.
		e.deliver(e.pol.Load(), item, w)
	}
	return w.head >= len(w.items)
}

// finishWaveLocked retires a worker's claim on a wave: a completed wave
// leaves the list (returned for recycling outside the lock), a stopped one
// stays queued for the next Drain.  Callers hold e.mu.
func (e *Engine) finishWaveLocked(w *wave, done bool) *wave {
	if done {
		if e.waves[e.whead] == w {
			// The usual case: the oldest wave retires; advance the head
			// past it and any slots nilled by out-of-order completions.
			e.waves[e.whead] = nil
			e.whead++
		} else {
			for i := e.whead + 1; i < len(e.waves); i++ {
				if e.waves[i] == w {
					e.waves[i] = nil
					break
				}
			}
		}
		for e.whead < len(e.waves) && e.waves[e.whead] == nil {
			e.whead++
		}
		if e.whead >= len(e.waves) {
			// Reuse the backing array for the next burst, unless it grew
			// beyond the retention bound.
			if cap(e.waves) > maxRetainedQueue {
				e.waves = nil
			} else {
				e.waves = e.waves[:0]
			}
			e.whead = 0
		}
		e.nwaves--
	} else {
		w.running = false // stopped mid-wave; resumable by the next Drain
	}
	e.active--
	e.wakeLocked()
	if done {
		return w
	}
	return nil
}

// runWaveWorker is the pooled-goroutine wrapper around runWaveBody.
func (e *Engine) runWaveWorker(w *wave, d *drainState) {
	done := e.runWaveBody(w, d)
	e.mu.Lock()
	recycle := e.finishWaveLocked(w, done)
	e.mu.Unlock()
	if recycle != nil {
		recycleWave(recycle)
	}
}

// deliver processes one queued delivery: run the matching run-time rules on
// the target OID (unless propagate-only), then propagate the event across
// the target's links within the owning wave.
func (e *Engine) deliver(pol *policy, item queueItem, w *wave) {
	ev := item.ev
	e.stats.deliveries.Add(1)
	if !e.db.HasOID(ev.Target) {
		e.stats.drops.Add(1)
		if e.tracing {
			e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: ev.Target.String(), Event: ev.Name, Detail: "target missing"})
		}
		return
	}
	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TraceDeliver, OID: ev.Target.String(), Event: ev.Name})
	}

	if !item.skipRules {
		e.runRules(pol, ev)
	}
	e.propagate(item, w)
}

// runRules executes the run-time rules matching the event on its target,
// in the paper's phase order: assigns, continuous assignments, execs and
// notifies, posts.  The compiled program has the actions pre-partitioned
// by phase, so no per-delivery scan of the rule set is needed.
func (e *Engine) runRules(pol *policy, ev Event) {
	prog := pol.idx.Program(ev.Target.View, ev.Name)
	lets := pol.idx.Lets(ev.Target.View)
	if prog != nil {
		e.stats.rulesFired.Add(int64(len(prog.Rules)))
	}

	// Phases 1 and 2: property assignments, then re-evaluation of the
	// continuous assignments — batched into one locked database
	// round-trip (UpdateOID) instead of a GetProp/SetProp pair per value.
	if (prog != nil && len(prog.Assigns) > 0) || len(lets) > 0 {
		e.applyAssignsAndLets(ev, prog, lets)
	}
	if prog == nil {
		return
	}

	var lookup bpl.LookupFunc
	if len(prog.Execs) > 0 || len(prog.Posts) > 0 {
		lookup = e.lookupFor(ev)
	}

	// Phase 3: exec and notify actions.  Exec invocations are launched
	// like the paper's wrapper shell scripts: the environment is captured
	// now, but the external tool effectively runs after the current event
	// wave has settled (the engine defers the call until the queue is
	// empty), so a tool triggered by a check-in is not caught by that
	// check-in's own invalidation wave.
	for _, a := range prog.Execs {
		switch act := a.(type) {
		case *bpl.ExecAction:
			inv := exec.Invocation{
				Script: act.Argv[0].Expand(lookup),
				Env:    e.envSnapshot(ev),
			}
			for _, t := range act.Argv[1:] {
				inv.Args = append(inv.Args, t.Expand(lookup))
			}
			e.stats.execs.Add(1)
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceExec, OID: ev.Target.String(), Event: ev.Name,
					Detail: inv.String()})
			}
			e.mu.Lock()
			e.pending = append(e.pending, func() {
				if err := e.executor.Exec(inv); err != nil {
					e.stats.execErrors.Add(1)
					if e.tracing {
						e.traceError(ev, fmt.Sprintf("exec %s: %v", inv.Script, err))
					}
				}
			})
			e.mu.Unlock()
		case *bpl.NotifyAction:
			msg := act.Message.Expand(lookup)
			e.stats.notifies.Add(1)
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceNotify, OID: ev.Target.String(), Event: ev.Name,
					Detail: msg})
			}
			if err := e.executor.Notify(msg); err != nil {
				e.stats.execErrors.Add(1)
				if e.tracing {
					e.traceError(ev, fmt.Sprintf("notify: %v", err))
				}
			}
		}
	}

	// Phase 4: post actions.
	for _, pa := range prog.Posts {
		e.execPost(ev, pa, lookup)
	}
}

// applyAssignsAndLets runs delivery phases 1 and 2 on the target OID in a
// single write-locked round-trip.  Phase-1 assignments are visible to the
// phase-2 continuous assignments (and to later phases) because both read
// and write the live property map.  Trace entries are recorded inside the
// critical section (only when tracing) and emitted after it, in execution
// order, so a slow tracer never extends the database lock hold time.
func (e *Engine) applyAssignsAndLets(ev Event, prog *bpl.Program, lets []*bpl.LetDecl) {
	type rec struct {
		kind   TraceKind
		detail string
	}
	var recs []rec
	err := e.db.UpdateOID(ev.Target, func(o *meta.OID) {
		lookup := e.lookupOver(ev, o.Props)
		if prog != nil {
			for _, aa := range prog.Assigns {
				val := aa.Value.Expand(lookup)
				if verr := meta.ValidateName(aa.Prop); verr != nil {
					if e.tracing {
						recs = append(recs, rec{TraceError,
							fmt.Sprintf("assign %s: property: %v", aa.Prop, verr)})
					}
					continue
				}
				o.Props[aa.Prop] = val
				e.stats.assigns.Add(1)
				if e.tracing {
					recs = append(recs, rec{TraceAssign, aa.Prop + " = " + val})
				}
			}
		}
		for _, l := range lets {
			val := "false"
			if l.Expr.Eval(lookup) {
				val = "true"
			}
			e.stats.letEvals.Add(1)
			if old, had := o.Props[l.Name]; had && old == val {
				continue
			}
			if meta.ValidateName(l.Name) != nil {
				continue
			}
			o.Props[l.Name] = val
			if e.tracing {
				recs = append(recs, rec{TraceLet, l.Name + " = " + val})
			}
		}
	})
	if err != nil {
		// The target vanished between the delivery check and the update
		// (concurrent prune); drop the phases silently like the unbatched
		// path did.
		return
	}
	if e.tracing {
		oid := ev.Target.String()
		for _, r := range recs {
			switch r.kind {
			case TraceLet:
				e.tracer.Trace(TraceEntry{Kind: TraceLet, OID: oid, Detail: r.detail})
			default:
				e.tracer.Trace(TraceEntry{Kind: r.kind, OID: oid, Event: ev.Name, Detail: r.detail})
			}
		}
	}
}

// execPost runs one post action in the context of event ev.
func (e *Engine) execPost(ev Event, pa *bpl.PostAction, lookup bpl.LookupFunc) {
	var args []string
	if len(pa.Args) > 0 {
		args = make([]string, 0, len(pa.Args))
		for _, t := range pa.Args {
			args = append(args, t.Expand(lookup))
		}
	}
	nev := Event{Name: pa.Event, Dir: pa.Dir, Args: args, User: ev.User}
	skipRules := false
	if pa.ToView != "" {
		// Targeted post: address the latest version of the named view of
		// the same block; rules run there.
		target, err := e.db.Latest(ev.Target.Block, pa.ToView)
		if err != nil {
			if e.tracing {
				e.traceError(ev, fmt.Sprintf("post %s to %s: no such OID", pa.Event, pa.ToView))
			}
			return
		}
		nev.Target = target
	} else {
		// Direct propagation from the current OID: local rules do not run
		// again here; the event only travels outward.
		nev.Target = ev.Target
		skipRules = true
	}
	e.mu.Lock()
	e.enqueueLocked(nev, skipRules)
	e.mu.Unlock()
	e.stats.posts.Add(1)
	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TracePost, OID: nev.Target.String(), Event: pa.Event,
			Detail: "dir " + pa.Dir.String()})
	}
}

// reevalLets re-evaluates every continuous assignment of the OID's view and
// stores the boolean results as properties.  ev supplies the variable
// context; CreateOID passes a synthetic create event.
func (e *Engine) reevalLets(idx *bpl.Index, ev Event) {
	lets := idx.Lets(ev.Target.View)
	if len(lets) == 0 {
		return
	}
	e.applyAssignsAndLets(ev, nil, lets)
}

// propagate crosses the target's links with the delivered event, enqueuing
// continuation deliveries within the same wave.  The wave is owned by the
// calling worker, so the visited set and item queue need no locking.
func (e *Engine) propagate(item queueItem, w *wave) {
	ev := item.ev
	hops := w.hops[:0]
	var blocked int64
	e.db.EachLinkOf(ev.Target, func(l *meta.Link) bool {
		if !l.CanPropagate(ev.Name) {
			blocked++
			return true
		}
		var next meta.Key
		switch {
		case ev.Dir == bpl.DirDown && l.From == ev.Target:
			next = l.To
		case ev.Dir == bpl.DirUp && l.To == ev.Target:
			next = l.From
		default:
			blocked++
			return true
		}
		hops = append(hops, next)
		return true
	})
	w.hops = hops
	if blocked > 0 {
		e.stats.blocked.Add(blocked)
	}
	if len(hops) == 0 {
		return
	}

	var drops, propagations int64
	if e.dedup && w.visited == nil {
		// First propagation of the wave.  FIFO order guarantees it happens
		// at the wave's origin, so marking the current target seeds the
		// set exactly as marking at enqueue time would.
		w.visited = visitedPool.Get().(map[meta.Key]bool)
		w.visited[ev.Target] = true
	}
	for _, to := range hops {
		if e.dedup {
			if w.visited[to] {
				drops++
				if e.tracing {
					e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: to.String(), Event: ev.Name,
						Detail: "already visited in wave"})
				}
				continue
			}
			w.visited[to] = true
		} else if item.hops >= e.maxHops {
			drops++
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: to.String(), Event: ev.Name,
					Detail: "hop limit (dedup ablated)"})
			}
			continue
		}
		nev := ev
		nev.Target = to
		w.items = append(w.items, queueItem{ev: nev, hops: item.hops + 1})
		w.n.Add(1)
		propagations++
		if e.tracing {
			e.tracer.Trace(TraceEntry{Kind: TracePropagate, OID: to.String(), Event: ev.Name,
				Detail: "from " + ev.Target.String()})
		}
	}
	if drops > 0 {
		e.stats.drops.Add(drops)
	}
	e.stats.propagations.Add(propagations)
}

func (e *Engine) traceError(ev Event, detail string) {
	e.tracer.Trace(TraceEntry{Kind: TraceError, OID: ev.Target.String(), Event: ev.Name, Detail: detail})
}
