package repro

// Supplementary benchmarks for subsystems added beyond the paper's core:
// state reporting at scale, time-travel configurations, design tasks, and
// the visualization renderers.

import (
	"fmt"
	"testing"

	"repro/internal/flow"
	"repro/internal/state"
	"repro/internal/task"
	"repro/internal/viz"
	"repro/internal/wrapper"
)

// BenchmarkStateReport measures the designer's project-state query across
// database sizes: n blocks, each with an unready schematic.
func BenchmarkStateReport(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			proj := mustProject(b, EDTCExample)
			for i := 0; i < n; i++ {
				if _, err := proj.Engine.CreateOID(fmt.Sprintf("blk%04d", i), "schematic", "bench"); err != nil {
					b.Fatal(err)
				}
			}
			if err := proj.Engine.Drain(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := state.Report(proj.DB, proj.Blueprint)
				if len(rep) != n {
					b.Fatal(len(rep))
				}
			}
		})
	}
}

// BenchmarkSnapshotAsOf measures historical configuration reconstruction
// over a database with deep version history.
func BenchmarkSnapshotAsOf(b *testing.B) {
	proj := mustProject(b, EDTCExample)
	const blocks, versions = 50, 20
	for i := 0; i < blocks; i++ {
		for v := 0; v < versions; v++ {
			if _, err := proj.Engine.CreateOID(fmt.Sprintf("blk%03d", i), "schematic", "bench"); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := proj.Engine.Drain(); err != nil {
		b.Fatal(err)
	}
	mid := proj.DB.Seq() / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("asof%d", i)
		c, err := proj.DB.SnapshotAsOf(name, mid)
		if err != nil {
			b.Fatal(err)
		}
		if len(c.OIDs) == 0 {
			b.Fatal("empty snapshot")
		}
		if err := proj.DB.DeleteConfiguration(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskRun measures the design-task layer overhead around a
// trivial step: tracking OID creation, status updates, and the four task
// events.
func BenchmarkTaskRun(b *testing.B) {
	sess, _, err := flow.NewEDTCSession(9)
	if err != nil {
		b.Fatal(err)
	}
	runner := task.NewRunner(sess)
	noop := task.Task{Name: "noop", Steps: []task.Step{{
		Name: "s",
		Run:  func(*wrapper.Session) error { return nil },
	}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := runner.Run(noop)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Status != "done" {
			b.Fatal(rec.Status)
		}
	}
}

// BenchmarkVizRenderers measures the DOT/text renderers on the scenario
// database.
func BenchmarkVizRenderers(b *testing.B) {
	sess, _, err := flow.NewEDTCSession(3)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := flow.RunEDTCScenario(sess); err != nil {
		b.Fatal(err)
	}
	db, bp := sess.Eng.DB(), sess.Eng.Blueprint()
	b.Run("flow-dot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := viz.FlowDOT(bp); len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("state-dot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := viz.StateDOT(db, bp); len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("state-text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := viz.StateText(db, bp); len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkDSMScenario runs the second bundled methodology end to end.
func BenchmarkDSMScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flow.RunDSMScenario(); err != nil {
			b.Fatal(err)
		}
	}
}
