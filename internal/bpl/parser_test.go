package bpl

import (
	"reflect"
	"regexp"
	"testing"
)

func mustParse(t *testing.T, src string) *Blueprint {
	t.Helper()
	bp, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return bp
}

func TestParseEDTCExample(t *testing.T) {
	bp := mustParse(t, EDTCExample)
	if bp.Name != "EDTC_example" {
		t.Errorf("Name = %q", bp.Name)
	}
	wantViews := []string{"default", "HDL_model", "synth_lib", "schematic", "netlist", "layout"}
	if got := bp.ViewNames(); !reflect.DeepEqual(got, wantViews) {
		t.Errorf("ViewNames = %v, want %v", got, wantViews)
	}

	dv := bp.DefaultView()
	if dv == nil {
		t.Fatal("no default view")
	}
	if len(dv.Properties) != 1 || dv.Properties[0].Name != "uptodate" || dv.Properties[0].Default != "true" {
		t.Errorf("default view properties = %+v", dv.Properties)
	}
	if len(dv.Rules) != 2 {
		t.Fatalf("default view rules = %d", len(dv.Rules))
	}
	ckin := dv.Rules[0]
	if ckin.Event != "ckin" || len(ckin.Actions) != 2 {
		t.Fatalf("ckin rule = %+v", ckin)
	}
	if a, ok := ckin.Actions[0].(*AssignAction); !ok || a.Prop != "uptodate" || a.Value.Expand(nil) != "true" {
		t.Errorf("ckin action 0 = %+v", ckin.Actions[0])
	}
	if p, ok := ckin.Actions[1].(*PostAction); !ok || p.Event != "outofdate" || p.Dir != DirDown || p.ToView != "" {
		t.Errorf("ckin action 1 = %+v", ckin.Actions[1])
	}

	sch, ok := bp.View("schematic")
	if !ok {
		t.Fatal("no schematic view")
	}
	if len(sch.Properties) != 2 || len(sch.Lets) != 1 || len(sch.Links) != 3 || len(sch.Rules) != 3 {
		t.Fatalf("schematic shape: %d props %d lets %d links %d rules",
			len(sch.Properties), len(sch.Lets), len(sch.Links), len(sch.Rules))
	}
	// link_from HDL_model move propagates outofdate type derived
	l0 := sch.Links[0]
	if l0.Use || l0.FromView != "HDL_model" || l0.Inherit != InheritMove ||
		!reflect.DeepEqual(l0.Propagates, []string{"outofdate"}) || l0.Type != "derived" {
		t.Errorf("schematic link 0 = %+v", l0)
	}
	// link_from synth_lib move propagates outofdate type depend_on
	l1 := sch.Links[1]
	if l1.FromView != "synth_lib" || l1.Inherit != InheritMove || l1.Type != "depend_on" {
		t.Errorf("schematic link 1 = %+v", l1)
	}
	// use_link move propagates outofdate
	l2 := sch.Links[2]
	if !l2.Use || l2.Inherit != InheritMove || !reflect.DeepEqual(l2.Propagates, []string{"outofdate"}) {
		t.Errorf("schematic link 2 = %+v", l2)
	}

	// netlist: link_from schematic propagates nl_sim, outofdate type derived
	nl, _ := bp.View("netlist")
	if got := nl.Links[0].Propagates; !reflect.DeepEqual(got, []string{"nl_sim", "outofdate"}) {
		t.Errorf("netlist propagates = %v", got)
	}

	// synth_lib is declared but empty.
	sl, _ := bp.View("synth_lib")
	if len(sl.Properties)+len(sl.Lets)+len(sl.Links)+len(sl.Rules) != 0 {
		t.Errorf("synth_lib not empty: %+v", sl)
	}

	// layout ckin rule posts lvs up with an argument.
	lay, _ := bp.View("layout")
	var found bool
	for _, r := range lay.RulesFor("ckin") {
		for _, a := range r.Actions {
			if p, ok := a.(*PostAction); ok && p.Event == "lvs" && p.Dir == DirUp && len(p.Args) == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("layout ckin post lvs up missing")
	}
}

func TestParseTemplateInterpolation(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    when ckin do lvs_res = "$oid changed by $user" done
endview
endblueprint`)
	v, _ := bp.View("v")
	a := v.Rules[0].Actions[0].(*AssignAction)
	got := a.Value.Expand(func(name string) string {
		switch name {
		case "oid":
			return "cpu,schematic,2"
		case "user":
			return "yves"
		}
		return ""
	})
	if got != "cpu,schematic,2 changed by yves" {
		t.Errorf("expansion = %q", got)
	}
	if vars := a.Value.Vars(); !reflect.DeepEqual(vars, []string{"oid", "user"}) {
		t.Errorf("Vars = %v", vars)
	}
}

func TestParseLetExpression(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    let state = ($a == good) and not ($b != bad) or $c
endview
endblueprint`)
	v, _ := bp.View("v")
	e := v.Lets[0].Expr
	// Shape: Or(And(Cmp, Not(Cmp)), Bool).
	or, ok := e.(*OrExpr)
	if !ok {
		t.Fatalf("top = %T", e)
	}
	and, ok := or.L.(*AndExpr)
	if !ok {
		t.Fatalf("or.L = %T", or.L)
	}
	if _, ok := and.L.(*CmpExpr); !ok {
		t.Errorf("and.L = %T", and.L)
	}
	if _, ok := and.R.(*NotExpr); !ok {
		t.Errorf("and.R = %T", and.R)
	}
	if _, ok := or.R.(*BoolExpr); !ok {
		t.Errorf("or.R = %T", or.R)
	}

	lookup := func(vals map[string]string) LookupFunc {
		return func(n string) string { return vals[n] }
	}
	if !e.Eval(lookup(map[string]string{"a": "good", "b": "bad", "c": "false"})) {
		t.Error("expected true (left branch)")
	}
	if !e.Eval(lookup(map[string]string{"a": "bad", "b": "bad", "c": "true"})) {
		t.Error("expected true (right branch)")
	}
	if e.Eval(lookup(map[string]string{"a": "bad", "b": "x", "c": "no"})) {
		t.Error("expected false")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no blueprint":       `view v endview`,
		"unclosed blueprint": `blueprint b view v endview`,
		"unclosed view":      `blueprint b view v endblueprint`,
		"bad item":           `blueprint b view v frobnicate endview endblueprint`,
		"prop no default":    `blueprint b view v property p endview endblueprint`,
		"link no propagates": `blueprint b view v link_from x type t endview endblueprint`,
		"rule no done":       `blueprint b view v when e do a = b endview endblueprint`,
		"rule bad dir":       `blueprint b view v when e do post x sideways done endview endblueprint`,
		"exec no args":       `blueprint b view v when e do exec done endview endblueprint`,
		"notify no msg":      `blueprint b view v when e do notify done endview endblueprint`,
		"assign no value":    `blueprint b view v when e do a = ; done endview endblueprint`,
		"cmp of compound":    `blueprint b view v let s = (($a == b) and $c) == d endview endblueprint`,
		"let operand kw":     `blueprint b view v let s = and endview endblueprint`,
		"trailing tokens":    "blueprint b endblueprint extra",
		"let unclosed paren": `blueprint b view v let s = ($a == b endview endblueprint`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse accepted %q", name, src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("blueprint b\nview v\n  property\nendview\nendblueprint")
	if err == nil {
		t.Fatal("no error")
	}
	if ok, _ := regexp.MatchString(`^\d+:\d+: `, err.Error()); !ok {
		t.Errorf("error lacks line:col position: %v", err)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    when e do a = b; done
endview
endblueprint`)
	v, _ := bp.View("v")
	if len(v.Rules[0].Actions) != 1 {
		t.Errorf("actions = %+v", v.Rules[0].Actions)
	}
}

func TestParsePostToView(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    when checkin do post behavioral_sim_ok down to VerilogNetList done
endview
endblueprint`)
	v, _ := bp.View("v")
	p := v.Rules[0].Actions[0].(*PostAction)
	if p.Event != "behavioral_sim_ok" || p.Dir != DirDown || p.ToView != "VerilogNetList" {
		t.Errorf("post = %+v", p)
	}
}

func TestParsePropertyInheritModes(t *testing.T) {
	bp := mustParse(t, `blueprint b
view GDSII
    property DRC default bad copy
    property hist default none move
    property plain default ok
endview
endblueprint`)
	v, _ := bp.View("GDSII")
	if v.Properties[0].Inherit != InheritCopy {
		t.Errorf("copy not parsed: %+v", v.Properties[0])
	}
	if v.Properties[1].Inherit != InheritMove {
		t.Errorf("move not parsed: %+v", v.Properties[1])
	}
	if v.Properties[2].Inherit != InheritNone {
		t.Errorf("none not parsed: %+v", v.Properties[2])
	}
}

func TestTemplateIDsDeterministic(t *testing.T) {
	bp1 := mustParse(t, EDTCExample)
	bp2 := mustParse(t, EDTCExample)
	v1, _ := bp1.View("schematic")
	v2, _ := bp2.View("schematic")
	for i := range v1.Links {
		if v1.Links[i].TemplateID != v2.Links[i].TemplateID {
			t.Errorf("link %d template IDs differ", i)
		}
		if v1.Links[i].TemplateID == "" {
			t.Errorf("link %d template ID empty", i)
		}
	}
	seen := map[string]bool{}
	for _, l := range v1.Links {
		if seen[l.TemplateID] {
			t.Errorf("duplicate template ID %q", l.TemplateID)
		}
		seen[l.TemplateID] = true
	}
}

func TestParseKeywordAsName(t *testing.T) {
	// "type", "state", "copy" are legal property/view names by context
	// sensitivity.
	bp := mustParse(t, `blueprint b
view type
    property copy default move
    when state do copy = done2 done
endview
endblueprint`)
	v, ok := bp.View("type")
	if !ok {
		t.Fatal("view named 'type' rejected")
	}
	if v.Properties[0].Name != "copy" || v.Properties[0].Default != "move" {
		t.Errorf("property = %+v", v.Properties[0])
	}
}
