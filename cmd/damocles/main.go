// Command damocles runs the DAMOCLES project server: it loads a BluePrint
// policy file and an optional saved meta-database, listens for wrapper
// connections, and processes design events (Figure 1 of the paper).
//
// Usage:
//
//	damocles [-addr host:port] [-blueprint file] [-db file | -journal dir [-fsync]] [-trace]
//
// With no -blueprint, the EDTC_example policy from section 3.4 of the
// paper is loaded.  With -db, the meta-database is loaded at startup (if
// the file exists) and saved back on SIGINT/SIGTERM shutdown — the
// original stop-the-world persistence.  With -journal, the database lives
// in an append-only record log with periodic snapshots under the given
// directory: every acknowledged mutation is handed to the operating
// system before its response, so a crashed process (even SIGKILL)
// restarts into the exact acknowledged state by loading the newest
// snapshot and replaying the record tail.  Surviving an OS crash or
// power loss additionally needs -fsync, which forces every commit to
// stable storage at a per-request latency cost.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/bpl"
	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("damocles: ")
	addr := flag.String("addr", "127.0.0.1:7495", "listen address")
	bpFile := flag.String("blueprint", "", "BluePrint policy file (default: built-in EDTC example)")
	dbFile := flag.String("db", "", "meta-database file to load/save")
	jdir := flag.String("journal", "", "journal directory (append-only log + snapshots; excludes -db)")
	fsync := flag.Bool("fsync", false, "with -journal, fsync every commit (survive OS crashes, not just process crashes)")
	trace := flag.Bool("trace", false, "log engine trace to stderr")
	flag.Parse()

	if err := run(*addr, *bpFile, *dbFile, *jdir, *fsync, *trace); err != nil {
		log.Fatal(err)
	}
}

func run(addr, bpFile, dbFile, jdir string, fsync, trace bool) error {
	if dbFile != "" && jdir != "" {
		return fmt.Errorf("-db and -journal are mutually exclusive persistence modes")
	}
	bp, err := cli.LoadBlueprint(bpFile)
	if err != nil {
		return err
	}
	for _, d := range bpl.Analyze(bp) {
		log.Printf("blueprint %s: %s", bp.Name, d)
	}

	db := meta.NewDB()
	var jw *journal.Writer
	if jdir != "" {
		var err error
		jw, db, err = journal.Open(jdir, journal.Options{Fsync: fsync})
		if err != nil {
			return err
		}
		log.Printf("recovered journal %s at lsn %d: %+v", jdir, jw.LastLSN(), db.Stats())
	} else if dbFile != "" {
		f, err := os.Open(dbFile)
		switch {
		case err == nil:
			db, err = meta.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("load %s: %w", dbFile, err)
			}
			log.Printf("loaded %s: %+v", dbFile, db.Stats())
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("%s not found, starting empty", dbFile)
		default:
			return err
		}
	}

	var opts []engine.Option
	if trace {
		opts = append(opts, engine.WithTracer(logTracer{}))
	}
	var srvOpts []server.Option
	if jw != nil {
		opts = append(opts, engine.WithJournal(jw))
		srvOpts = append(srvOpts, server.WithJournal(jw))
	}
	eng, err := engine.New(db, bp, opts...)
	if err != nil {
		return err
	}
	srv := server.New(eng, srvOpts...)
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("project %s serving on %s", bp.Name, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			return err
		}
		log.Printf("journal closed at lsn %d: %+v", jw.LastLSN(), db.Stats())
	}
	if dbFile != "" {
		f, err := os.Create(dbFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
		log.Printf("saved %s: %+v", dbFile, db.Stats())
	}
	return nil
}

// logTracer streams engine trace entries to the log.
type logTracer struct{}

func (logTracer) Trace(e engine.TraceEntry) { log.Print(e.String()) }
