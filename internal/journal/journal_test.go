package journal_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/server"
)

// saveBytes renders a database in its canonical persisted form; two
// databases with equal saveBytes are equal in every respect persistence
// covers (objects, properties, links, configs, workspaces, counters).
func saveBytes(t *testing.T, db *meta.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mutate exercises every journaled mutation class against db.
func mutate(t *testing.T, db *meta.DB) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	var keys []meta.Key
	for _, block := range []string{"cpu", "alu", "reg"} {
		for _, view := range []string{"HDL_model", "netlist"} {
			k, err := db.NewVersion(block, view)
			must(err)
			keys = append(keys, k)
			must(db.SetProp(k, "owner", "yves"))
		}
	}
	must(db.SetProp(keys[0], "sim_result", "4 errors"))
	must(db.UpdateOID(keys[1], func(o *meta.OID) {
		o.Props["uptodate"] = "true"
		o.Props["drc"] = "ok"
		delete(o.Props, "owner")
	}))
	must(db.DelProp(keys[0], "sim_result"))

	l1, err := db.AddLink(meta.UseLink, keys[0], keys[2], "tpl_a", []string{"ckin"}, map[string]string{"TYPE": "composition"})
	must(err)
	l2, err := db.AddLink(meta.DeriveLink, keys[1], keys[2], "", nil, nil)
	must(err)
	l3, err := db.AddLink(meta.DeriveLink, keys[3], keys[4], "", []string{"outofdate"}, nil)
	must(err)
	must(db.SetLinkProp(l2, "TYPE", "equivalence"))
	must(db.SetLinkPropagates(l2, []string{"ckin", "outofdate"}))
	must(db.DeleteLink(l3))

	k2, err := db.NewVersion(keys[0].Block, keys[0].View)
	must(err)
	keys = append(keys, k2)
	must(db.RetargetLink(l1, keys[0], k2))

	if _, err := db.SnapshotQuery("everything", func(*meta.OID) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SnapshotQuery("doomed", func(*meta.OID) bool { return false }); err != nil {
		t.Fatal(err)
	}
	must(db.DeleteConfiguration("doomed"))
	must(db.AddWorkspace("ws", "/proj/data"))
	must(db.BindPath("ws", keys[2], "alu/hdl/1"))

	for i := 0; i < 3; i++ {
		if _, err := db.NewVersion("reg", "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.PruneVersions("reg", "HDL_model", 2); err != nil {
		t.Fatal(err)
	}
}

// TestJournalRecoveryRoundTrip crashes (abandons) a journal mid-life and
// checks recovery reproduces the exact committed state, byte for byte in
// the canonical Save form.
func TestJournalRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, db)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, db)

	// Crash: the writer is never closed; recovery sees only what Commit
	// pushed to the OS.
	got, lsn, err := journal.Replay(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 {
		t.Fatal("no records replayed")
	}
	if !bytes.Equal(want, saveBytes(t, got)) {
		t.Errorf("recovered state differs from committed state:\n--- live\n%s\n--- recovered\n%s",
			want, saveBytes(t, got))
	}

	// A second, writable recovery must agree too and keep working.
	w2, db2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, saveBytes(t, db2)) {
		t.Error("Open recovery differs from Replay recovery")
	}
	if _, err := db2.NewVersion("post", "HDL_model"); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, _, err := journal.Replay(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, db2), saveBytes(t, db3)) {
		t.Error("post-recovery mutation lost")
	}
}

// TestJournalRecoveryTornWrite is the torn-write sweep: a journal whose
// final record is cut at EVERY byte offset must always recover — to the
// state just before that record, since its write was never acknowledged.
func TestJournalRecoveryTornWrite(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := db.NewVersion("cpu", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetProp(k, "drc", "ok"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	wantTorn := saveBytes(t, db) // state without the final record

	// The final record: one more property write, committed.
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	before, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetProp(k, "sim_result", "good"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	wantFull := saveBytes(t, db)
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(before) {
		t.Fatalf("final record added no bytes: %d -> %d", len(before), len(full))
	}

	for cut := len(before); cut <= len(full); cut++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, filepath.Base(segs[0])), full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		w2, db2, err := journal.Open(tdir, journal.Options{})
		if err != nil {
			t.Fatalf("cut at %d/%d bytes: recovery failed: %v", cut, len(full), err)
		}
		want := wantTorn
		if cut == len(full) {
			want = wantFull
		}
		if got := saveBytes(t, db2); !bytes.Equal(want, got) {
			t.Fatalf("cut at %d/%d bytes: wrong recovered state:\n%s", cut, len(full), got)
		}
		// The repaired journal must accept appends and survive another
		// recovery: the truncated tail cannot poison the next generation.
		if err := db2.SetProp(k, "resumed", "true"); err != nil {
			t.Fatal(err)
		}
		if err := w2.Commit(); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		db3, _, err := journal.Replay(tdir, 0)
		if err != nil {
			t.Fatalf("cut at %d: re-recovery: %v", cut, err)
		}
		if !bytes.Equal(saveBytes(t, db2), saveBytes(t, db3)) {
			t.Fatalf("cut at %d: post-repair append lost", cut)
		}
	}
}

// TestJournalRecoveryAfterRotationAndSnapshot forces segment rotation and
// snapshots, checks compaction deletes covered segments and stale
// snapshots, and that recovery from the compacted directory is exact.
func TestJournalRecoveryAfterRotationAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SegmentBytes: 256, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		k, err := db.NewVersion(fmt.Sprintf("blk%d", i%5), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetProp(k, "round", fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if len(segsBefore) < 3 {
		t.Fatalf("rotation did not happen: %d segments", len(segsBefore))
	}
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(); err != nil { // idempotent when nothing new
		t.Fatal(err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if len(segsAfter) != 1 {
		t.Errorf("compaction left %d segments, want 1 (the tail)", len(segsAfter))
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if len(snaps) != 1 {
		t.Errorf("compaction left %d snapshots, want 1", len(snaps))
	}

	// More traffic after the snapshot, then crash-recover.
	k, err := db.NewVersion("after", "netlist")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetProp(k, "fresh", "yes"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _, err := journal.Replay(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, db), saveBytes(t, got)) {
		t.Error("recovery after rotation+snapshot+compaction differs from live state")
	}
}

// TestJournalRecoveryCorruptionMidStreamFails checks that damage anywhere
// but the journal tail fails recovery instead of silently dropping
// acknowledged history.
func TestJournalRecoveryCorruptionMidStreamFails(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SegmentBytes: 128, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.NewVersion(fmt.Sprintf("b%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %d", len(segs))
	}
	// Flip one payload byte in the middle of the FIRST segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err = journal.Replay(dir, 0)
	if err == nil {
		t.Fatal("recovery accepted mid-stream corruption")
	}
	t.Logf("recovery refused, as it must: %v", err)
}

// TestJournalRecoverySnapshotOverUncommittedBuffer snapshots while
// records sit only in the writer's memory buffer, then crashes: the
// snapshot must not outrun the on-disk log in a way that leaves the next
// append discontinuous — recovery, append, and a second recovery must all
// succeed with nothing lost.
func TestJournalRecoverySnapshotOverUncommittedBuffer(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	k, err := db.NewVersion("cpu", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Buffered but deliberately not committed, then snapshot.
	if err := db.SetProp(k, "buffered", "yes"); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, db)

	// Crash, recover, append, crash, recover.
	w2, db2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, saveBytes(t, db2)) {
		t.Error("snapshot lost the buffered record")
	}
	if err := db2.SetProp(k, "after", "crash"); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	db3, _, err := journal.Replay(dir, 0)
	if err != nil {
		t.Fatalf("recovery after post-snapshot append: %v", err)
	}
	if !bytes.Equal(saveBytes(t, db2), saveBytes(t, db3)) {
		t.Error("post-snapshot append lost")
	}
}

// TestJournalRecoveryCorruptionBeforeValidTailFails flips a byte in the
// MIDDLE of the last segment, with acknowledged records after it: this is
// corruption, not a torn tail, and recovery must refuse rather than
// silently truncate the acknowledged suffix away.
func TestJournalRecoveryCorruptionBeforeValidTailFails(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.NewVersion(fmt.Sprintf("b%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err = journal.Replay(dir, 0)
	if err == nil {
		t.Fatal("recovery silently truncated acknowledged records after mid-segment corruption")
	}
	if !strings.Contains(err.Error(), "corruption") {
		t.Errorf("error does not name corruption: %v", err)
	}
}

// TestJournalRecoveryMissingSegmentFails deletes a middle segment: the
// record stream has a gap, and recovery must refuse rather than replay
// the surviving tail onto a state missing the middle of its history.
func TestJournalRecoveryMissingSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SegmentBytes: 128, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.NewVersion(fmt.Sprintf("b%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	_, _, err = journal.Replay(dir, 0)
	if err == nil {
		t.Fatal("recovery accepted a record stream with a missing segment")
	}
	if !strings.Contains(err.Error(), "gap") {
		t.Errorf("error does not name the gap: %v", err)
	}
}

// TestJournalRecoverySnapshotDuringLiveWrites runs checkin-shaped writers
// concurrently with repeated snapshots (under -race in CI): snapshots must
// never deadlock with or corrupt the write stream, writers keep making
// progress, and the final recovered state equals the final live state.
func TestJournalRecoverySnapshotDuringLiveWrites(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SegmentBytes: 1 << 16, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const writers, rounds = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k, err := db.NewVersion(fmt.Sprintf("w%d-b%d", g, i), "HDL_model")
				if err != nil {
					t.Error(err)
					return
				}
				if err := db.SetProp(k, "state", "checked_in"); err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stopSnap := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if err := w.Snapshot(); err != nil {
				t.Error(err)
				return
			}
			select {
			case <-stopSnap:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	wg.Wait()
	close(stopSnap)
	<-done
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _, err := journal.Replay(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, db), saveBytes(t, got)) {
		t.Error("recovery differs after concurrent snapshots")
	}
}

// TestJournalRecoveryThroughServer drives the full stack — engine and TCP
// server with an attached journal — then recovers from the abandoned
// journal directory and compares the REPORT body a fresh server produces.
func TestJournalRecoveryThroughServer(t *testing.T) {
	dir := t.TempDir()
	report1 := runServerTraffic(t, dir)

	// Recover (the first writer was never closed — a crash) and serve the
	// report again from a brand-new stack.
	w, db, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(db, bp, engine.WithJournal(w))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.WithJournal(w))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	report2, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(report1, "\n") != strings.Join(report2, "\n") {
		t.Errorf("post-recovery REPORT differs:\n--- before\n%s\n--- after\n%s",
			strings.Join(report1, "\n"), strings.Join(report2, "\n"))
	}
}

// runServerTraffic stands up a journaled server on dir, drives design
// traffic over TCP, and returns the REPORT body right before abandoning
// the stack without closing the journal (simulating a crash).
func runServerTraffic(t *testing.T, dir string) []string {
	t.Helper()
	w, db, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(db, bp, engine.WithJournal(w))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.WithJournal(w))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.User = "yves"

	parent, err := c.Create("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	child, err := c.Create("ALU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Link("use", parent, child); err != nil {
		t.Fatal(err)
	}
	for _, k := range []meta.Key{parent, child} {
		if err := c.PostEvent("ckin", "up", k, "initial checkin"); err != nil {
			t.Fatal(err)
		}
		if err := c.PostEvent("hdl_sim", "down", k, "good"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Snapshot("milestone", "*"); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	report, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	return report
}
