package engine

import (
	"testing"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// TestDrainTriggersComponentRebuild covers the scheduling-precision
// satellite: deleting the only propagating link between two blocks leaves
// the merge-only union-find coarse (the two waves would keep
// serializing), and a SetBlueprint-triggered rebuild at the next drain
// start splits the component again.
func TestDrainTriggersComponentRebuild(t *testing.T) {
	e := newTestEngine(t, tinyBP, WithDrainWorkers(2))
	db := e.DB()
	a := mustCreate(t, e, "cpu", "default")
	b := mustCreate(t, e, "alu", "default")
	id, err := e.CreateLink(meta.DeriveLink, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetLinkPropagates(id, []string{"ckin"}); err != nil {
		t.Fatal(err)
	}
	if !db.SameComponent("cpu", "alu") {
		t.Fatal("propagating link did not merge components")
	}

	if err := db.DeleteLink(id); err != nil {
		t.Fatal(err)
	}
	if !db.SameComponent("cpu", "alu") {
		t.Fatal("partition split without a rebuild (merge-only invariant broken)")
	}

	// Reloading the (identical) blueprint requests the rebuild; the next
	// drain performs it at its safe start point.
	if err := e.SetBlueprint(e.Blueprint()); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: "ckin", Dir: bpl.DirUp, Target: a}); err != nil {
		t.Fatal(err)
	}
	if db.SameComponent("cpu", "alu") {
		t.Error("drain after SetBlueprint did not rebuild the stale component")
	}

	// The engine keeps working against the rebuilt partition.
	if err := e.PostAndDrain(Event{Name: "ckin", Dir: bpl.DirUp, Target: b}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnTriggersComponentRebuild checks the count-based trigger: past
// componentRebuildChurn propagating-link removals, a drain rebuilds
// without any blueprint reload.
func TestChurnTriggersComponentRebuild(t *testing.T) {
	e := newTestEngine(t, tinyBP, WithDrainWorkers(2))
	db := e.DB()
	a := mustCreate(t, e, "cpu", "default")
	b := mustCreate(t, e, "alu", "default")
	for i := 0; i < componentRebuildChurn; i++ {
		id, err := e.CreateLink(meta.DeriveLink, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetLinkPropagates(id, []string{"ckin"}); err != nil {
			t.Fatal(err)
		}
		if err := db.DeleteLink(id); err != nil {
			t.Fatal(err)
		}
	}
	if db.ComponentChurn() < componentRebuildChurn {
		t.Fatalf("churn = %d, want >= %d", db.ComponentChurn(), componentRebuildChurn)
	}
	if err := e.PostAndDrain(Event{Name: "ckin", Dir: bpl.DirUp, Target: a}); err != nil {
		t.Fatal(err)
	}
	if db.ComponentChurn() != 0 {
		t.Error("drain did not reset churn via rebuild")
	}
	if db.SameComponent("cpu", "alu") {
		t.Error("churn-triggered rebuild did not split the stale component")
	}
}
