package repro

// Benchmark harness: one benchmark family per figure of the paper and per
// quantitative experiment derived from its claims.  The paper itself
// contains no numeric tables — Figures 1-5 are architecture and semantics
// diagrams — so each figure is reproduced as the *behaviour* it depicts,
// and the qualitative claims (selective propagation, policy loosening,
// non-obstructive observer vs activity-driven management, lightweight
// configurations) are measured explicitly.  See EXPERIMENTS.md for the
// mapping and recorded results.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bpl"
	"repro/internal/flow"
	"repro/internal/meta"
	"repro/internal/server"
	"repro/internal/wire"
)

func mustProject(b *testing.B, src string, opts ...EngineOption) *Project {
	b.Helper()
	proj, err := NewProject(src, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return proj
}

func mustKey(b *testing.B, eng *Engine, block, view string) Key {
	b.Helper()
	k, err := eng.CreateOID(block, view, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
	return k
}

// ---------------------------------------------------------------------------
// FIG1 — BluePrint architecture: event message -> queue -> engine -> meta-db

// BenchmarkFig1EventPipeline measures one design event traversing the
// Figure 1 pipeline in-process: request parse, queue, rule execution,
// continuous assignment, meta-data update.
func BenchmarkFig1EventPipeline(b *testing.B) {
	proj := mustProject(b, EDTCExample)
	srv := server.New(proj.Engine)
	k := mustKey(b, proj.Engine, "CPU", "HDL_model")
	req := wire.Request{Verb: wire.VerbPost, User: "bench",
		Args: []string{"hdl_sim", "down", k.String(), "good"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := srv.Handle(req); !resp.OK {
			b.Fatal(resp.Detail)
		}
	}
}

// BenchmarkFig1EventPipelineTCP measures the same pipeline across a real
// TCP connection — the deployment shape of Figure 1 with the wrapper on
// the network.
func BenchmarkFig1EventPipelineTCP(b *testing.B) {
	proj := mustProject(b, EDTCExample)
	srv := server.New(proj.Engine)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	k := mustKey(b, proj.Engine, "CPU", "HDL_model")
	c, err := server.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.PostEvent("hdl_sim", "down", k, "good"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1AsyncVsSyncServer contrasts the designer-visible POST
// latency of the two server modes over TCP: synchronous (the response
// arrives after the whole invalidation wave has been processed) vs
// asynchronous (Figure 1's queue decoupling — the response acknowledges
// enqueueing and the engine drains in the background).  The workload posts
// check-ins at the root of a 63-node hierarchy so each event carries a
// real propagation cost.
func BenchmarkFig1AsyncVsSyncServer(b *testing.B) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		b.Run(name, func(b *testing.B) {
			bp, err := flow.PropagationBlueprint("f1", "node", []string{"outofdate"})
			if err != nil {
				b.Fatal(err)
			}
			eng, err := NewEngine(NewDB(), bp)
			if err != nil {
				b.Fatal(err)
			}
			root, _, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: 6, Fanout: 2})
			if err != nil {
				b.Fatal(err)
			}
			var srv *server.Server
			if async {
				srv = server.New(eng, server.WithAsyncDrain())
			} else {
				srv = server.New(eng)
			}
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := server.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.PostEvent(EventCheckin, "down", root); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := c.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// FIG2 — template rule: property copy on new version

// BenchmarkFig2TemplateApply measures new-version creation under a view
// with copy-inherited properties (Figure 2's DRC example, widened to
// several properties).
func BenchmarkFig2TemplateApply(b *testing.B) {
	proj := mustProject(b, `blueprint fig2
view GDSII
    property DRC default bad copy
    property density default unknown copy
    property signoff default none copy
endview
endblueprint`)
	if _, err := proj.Engine.CreateOID("alu", "GDSII", "bench"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proj.Engine.CreateOID("alu", "GDSII", "bench"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := proj.Engine.Drain(); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// FIG3 — derive-link move on new version

// BenchmarkFig3LinkShift measures version creation when move-tagged links
// must shift (Figure 3), with a configurable number of incident links.
func BenchmarkFig3LinkShift(b *testing.B) {
	for _, nLinks := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("links=%d", nLinks), func(b *testing.B) {
			proj := mustProject(b, `blueprint fig3
view NetList
endview
view GDSII
    link_from NetList move propagates OutOfDate type derive_from
endview
endblueprint`)
			eng := proj.Engine
			g := mustKey(b, eng, "alu", "GDSII")
			for i := 0; i < nLinks; i++ {
				nl := mustKey(b, eng, fmt.Sprintf("net%d", i), "NetList")
				if _, err := eng.CreateLink(DeriveLink, nl, g); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CreateOID("alu", "GDSII", "bench"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := eng.Drain(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// FIG45 — the example design flow of Figures 4 and 5

// BenchmarkFig45Scenario runs the complete section 3.4 designer scenario
// (three model versions, synthesis, auto-netlisting, invalidation wave) per
// iteration.
func BenchmarkFig45Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sess, _, err := flow.NewEDTCSession(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := flow.RunEDTCScenario(sess); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// EXP-PROP — selective propagation across hierarchies

// BenchmarkPropagationScaling posts one ckin at the root of a
// depth×fanout hierarchy and drains the resulting outofdate wave.  The
// filter dimension controls whether the use links admit the event —
// the PROPAGATE mechanism that makes propagation selective.
func BenchmarkPropagationScaling(b *testing.B) {
	for _, cfg := range []struct {
		depth, fanout int
		filtered      bool
	}{
		{2, 2, false}, {4, 2, false}, {6, 2, false},
		{3, 4, false}, {3, 8, false},
		{6, 2, true}, {3, 8, true},
	} {
		name := fmt.Sprintf("depth=%d/fanout=%d/filtered=%v", cfg.depth, cfg.fanout, cfg.filtered)
		b.Run(name, func(b *testing.B) {
			propagates := []string{"outofdate"}
			if cfg.filtered {
				propagates = nil
			}
			bp, err := flow.PropagationBlueprint("prop", "node", propagates)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := NewEngine(NewDB(), bp)
			if err != nil {
				b.Fatal(err)
			}
			root, all, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: cfg.depth, Fanout: cfg.fanout})
			if err != nil {
				b.Fatal(err)
			}
			ev := Event{Name: EventCheckin, Dir: DirDown, Target: root}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.PostAndDrain(ev); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(all)), "nodes")
			s := eng.Stats()
			b.ReportMetric(float64(s.Propagations)/float64(b.N), "propagations/op")
		})
	}
}

// ---------------------------------------------------------------------------
// EXP-LOOSE — policy loosening limits change propagation

// BenchmarkPolicyLoosening compares the same check-in under the strict
// policy (ckin posts outofdate, links propagate it) and a loosened one
// (early design phase: no invalidation), reproducing "the BluePrint can be
// loosened thereby limiting change propagation".
func BenchmarkPolicyLoosening(b *testing.B) {
	const looseSrc = `blueprint loose
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view node
    use_link move propagates outofdate
endview
endblueprint`
	build := func(b *testing.B, src string) (*Engine, Key) {
		var bp *Blueprint
		var err error
		if src == "" {
			bp, err = flow.PropagationBlueprint("strict", "node", []string{"outofdate"})
		} else {
			bp, err = ParseBlueprint(src)
		}
		if err != nil {
			b.Fatal(err)
		}
		eng, err := NewEngine(NewDB(), bp)
		if err != nil {
			b.Fatal(err)
		}
		root, _, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: 5, Fanout: 3})
		if err != nil {
			b.Fatal(err)
		}
		return eng, root
	}
	run := func(b *testing.B, src string) {
		eng, root := build(b, src)
		ev := Event{Name: EventCheckin, Dir: DirDown, Target: root}
		before := eng.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.PostAndDrain(ev); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		after := eng.Stats()
		b.ReportMetric(float64(after.Deliveries-before.Deliveries)/float64(b.N), "deliveries/op")
	}
	b.Run("strict", func(b *testing.B) { run(b, "") })
	b.Run("loosened", func(b *testing.B) { run(b, looseSrc) })
}

// ---------------------------------------------------------------------------
// EXP-OBS — non-obstructive observer vs activity-driven baseline

// BenchmarkObserverVsActivityDriven contrasts the *designer-blocking* cost
// of one edit on a linear derivation chain of length n under the two
// architectures of section 4:
//
//   - observer (DAMOCLES): the designer's check-in is one posted event —
//     an O(1) enqueue.  The invalidation wave is processed by the tracking
//     system as an observer, off the designer's critical path (measured
//     separately as observer-total).
//   - activity-driven (NELSIS-style): the edit itself is cheap, but the
//     designer's next activity request synchronously walks the whole input
//     closure and re-runs stale producers while the designer waits.
func BenchmarkObserverVsActivityDriven(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		views := make([]string, n)
		for i := range views {
			views[i] = fmt.Sprintf("v%02d", i)
		}
		buildObserver := func(b *testing.B) (*Project, Key, Key) {
			src := "blueprint obs\nview default\n    property uptodate default true\n" +
				"    when ckin do uptodate = true; post outofdate down done\n" +
				"    when outofdate do uptodate = false done\nendview\n"
			for i, v := range views {
				src += "view " + v + "\n"
				if i > 0 {
					src += "    link_from " + views[i-1] + " move propagates outofdate type derived\n"
				}
				src += "endview\n"
			}
			src += "endblueprint\n"
			proj := mustProject(b, src)
			keys, err := flow.BuildChain(proj.Engine, flow.ChainSpec{Block: "blk", Views: views})
			if err != nil {
				b.Fatal(err)
			}
			return proj, keys[0], keys[len(keys)-1]
		}
		b.Run(fmt.Sprintf("observer-designer/chain=%d", n), func(b *testing.B) {
			proj, head, tail := buildObserver(b)
			ev := Event{Name: EventCheckin, Dir: DirDown, Target: head}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The designer blocks only for the event post (enqueue)
				// and, before the next tool run, one property read.
				if err := proj.Engine.Post(ev); err != nil {
					b.Fatal(err)
				}
				if _, _, err := proj.DB.GetProp(tail, "uptodate"); err != nil {
					b.Fatal(err)
				}
				// The observer's background processing happens outside
				// the designer-visible window.
				b.StopTimer()
				if err := proj.Engine.Drain(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("observer-total/chain=%d", n), func(b *testing.B) {
			proj, head, _ := buildObserver(b)
			ev := Event{Name: EventCheckin, Dir: DirDown, Target: head}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := proj.Engine.PostAndDrain(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("activity/chain=%d", n), func(b *testing.B) {
			m := baseline.NewManager()
			if err := m.AddNode(baseline.NodeID(views[0])); err != nil {
				b.Fatal(err)
			}
			for i := 1; i < n; i++ {
				if err := m.AddNode(baseline.NodeID(views[i]), baseline.NodeID(views[i-1])); err != nil {
					b.Fatal(err)
				}
			}
			tail := baseline.NodeID(views[n-1])
			head := baseline.NodeID(views[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Touch(head); err != nil {
					b.Fatal(err)
				}
				// The activity request triggers the synchronous transitive
				// freshen the designer waits for.
				if _, err := m.Demand(tail); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEventVsPollingDetection contrasts how the two systems learn
// what is stale after a single edit in a project of n chains: DAMOCLES
// already knows (the event updated the properties; reading them is a
// query), while a polling checker must sweep every node.
func BenchmarkEventVsPollingDetection(b *testing.B) {
	const chains, length = 32, 8
	b.Run("event-driven-query", func(b *testing.B) {
		bp, err := flow.PropagationBlueprint("poll", "node", []string{"outofdate"})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := NewEngine(NewDB(), bp)
		if err != nil {
			b.Fatal(err)
		}
		var heads []Key
		for c := 0; c < chains; c++ {
			var prev Key
			for i := 0; i < length; i++ {
				k, err := eng.CreateOID(fmt.Sprintf("c%02d-%02d", c, i), "node", "bench")
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					heads = append(heads, k)
				} else {
					if _, err := eng.CreateLink(UseLink, prev, k); err != nil {
						b.Fatal(err)
					}
				}
				prev = k
			}
		}
		if err := eng.Drain(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.PostAndDrain(Event{Name: EventCheckin, Dir: DirDown, Target: heads[i%chains]}); err != nil {
				b.Fatal(err)
			}
			// The stale set is already materialized in properties.
			stale := eng.DB().OIDsWithProp("uptodate", "false")
			_ = stale
		}
	})
	b.Run("polling-sweep", func(b *testing.B) {
		m := baseline.NewManager()
		var heads []baseline.NodeID
		for c := 0; c < chains; c++ {
			var prev baseline.NodeID
			for i := 0; i < length; i++ {
				id := baseline.NodeID(fmt.Sprintf("c%02d-%02d", c, i))
				var err error
				if i == 0 {
					err = m.AddNode(id)
					heads = append(heads, id)
				} else {
					err = m.AddNode(id, prev)
				}
				if err != nil {
					b.Fatal(err)
				}
				prev = id
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Touch(heads[i%chains]); err != nil {
				b.Fatal(err)
			}
			st := m.PollAll()
			_ = st
		}
	})
}

// ---------------------------------------------------------------------------
// EXP-CONF — lightweight configurations

// BenchmarkConfigurationSnapshot measures hierarchy snapshots (address
// sets) against full materialization, at several design sizes — the
// "light weight configuration objects" claim of section 2.
func BenchmarkConfigurationSnapshot(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		bp, err := flow.PropagationBlueprint("conf", "node", []string{"outofdate"})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := NewEngine(NewDB(), bp)
		if err != nil {
			b.Fatal(err)
		}
		// A wide two-level hierarchy with n-1 leaves.
		root, _, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: 2, Fanout: n - 1})
		if err != nil {
			b.Fatal(err)
		}
		db := eng.DB()
		b.Run(fmt.Sprintf("snapshot/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("s%d-%d", n, i)
				if _, err := db.SnapshotHierarchy(name, root, meta.FollowUseLinks); err != nil {
					b.Fatal(err)
				}
				if err := db.DeleteConfiguration(name); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("materialize/n=%d", n), func(b *testing.B) {
			if _, err := db.SnapshotHierarchy("mat", root, meta.FollowUseLinks); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := db.Resolve("mat")
				if err != nil {
					b.Fatal(err)
				}
				if len(r.OIDs) != n {
					b.Fatalf("resolved %d", len(r.OIDs))
				}
			}
			b.StopTimer()
			if err := db.DeleteConfiguration("mat"); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// EXP-QUEUE — FIFO event queue throughput

// BenchmarkEventThroughput pushes batches of mixed events through the
// engine on the EDTC database and reports sustained events/second.
func BenchmarkEventThroughput(b *testing.B) {
	proj := mustProject(b, EDTCExample)
	eng := proj.Engine
	hdl := mustKey(b, eng, "CPU", "HDL_model")
	sch := mustKey(b, eng, "CPU", "schematic")
	nl := mustKey(b, eng, "CPU", "netlist")
	if _, err := eng.CreateLink(DeriveLink, hdl, sch); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.CreateLink(DeriveLink, sch, nl); err != nil {
		b.Fatal(err)
	}
	events := []Event{
		{Name: "hdl_sim", Dir: DirDown, Target: hdl, Args: []string{"good"}},
		{Name: EventCheckin, Dir: DirDown, Target: hdl},
		{Name: "nl_sim", Dir: DirUp, Target: nl, Args: []string{"good"}},
		{Name: EventCheckin, Dir: DirDown, Target: sch},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Post(events[i%len(events)]); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if err := eng.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// EXP-SCHED — tool scheduling

// BenchmarkToolScheduling measures the automated design flow of section
// 3.3: a model check-in that triggers synthesis-side invalidation plus the
// automatic netlister through the exec rule, versus the same flow driven
// manually by the designer.
func BenchmarkToolScheduling(b *testing.B) {
	b.Run("automatic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess, _, err := flow.NewEDTCSession(uint64(i + 1))
			if err != nil {
				b.Fatal(err)
			}
			hdl, err := sess.CheckinHDL("CPU", 50, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.RunHDLSim(hdl); err != nil {
				b.Fatal(err)
			}
			lib, err := sess.InstallLibrary("stdlib")
			if err != nil {
				b.Fatal(err)
			}
			// Check-in fires the exec rule; the netlist appears without
			// further designer action.
			if _, err := sess.Synthesize(hdl, lib); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Eng.DB().Latest("CPU", "netlist"); err != nil {
				b.Fatal("auto netlister did not run")
			}
		}
	})
	b.Run("manual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Same flow without the exec rule wiring: the designer runs
			// the netlister explicitly.
			sess, _, err := flow.NewEDTCSession(uint64(i + 1))
			if err != nil {
				b.Fatal(err)
			}
			// Disable automation by re-registering a no-op.
			eng := sess.Eng
			_ = eng
			hdl, err := sess.CheckinHDL("CPU2", 50, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.RunHDLSim(hdl); err != nil {
				b.Fatal(err)
			}
			lib, err := sess.InstallLibrary("stdlib2")
			if err != nil {
				b.Fatal(err)
			}
			sch, err := sess.Synthesize(hdl, lib)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.RunNetlister(sch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// EXP-WORKLOAD — sustained project activity

// BenchmarkWorkload runs the seeded random design-team workload and
// reports engine activity per designer step.
func BenchmarkWorkload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess, _, err := flow.NewEDTCSession(uint64(i + 77))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (flow.Workload{Seed: int64(i), Blocks: 4, Steps: 100, EditDefectRate: 25}).Run(sess); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlueprintParse measures policy (re)initialization — the paper's
// per-phase re-reading of the ASCII rule file.
func BenchmarkBlueprintParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bpl.Parse(bpl.EDTCExample); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// EXP-PAR — parallel wave drains and batched posts (PR 2)

// buildBenchForest creates trees disjoint use-link trees (depth levels,
// fanout children) with per-tree block prefixes — disjoint components, so
// their waves may drain concurrently — and returns the roots.
func buildBenchForest(b *testing.B, eng *Engine, trees, depth, fanout int) []Key {
	b.Helper()
	roots := make([]Key, 0, trees)
	for tr := 0; tr < trees; tr++ {
		root, err := eng.CreateOID(fmt.Sprintf("t%02d-root", tr), "node", "bench")
		if err != nil {
			b.Fatal(err)
		}
		roots = append(roots, root)
		level := []Key{root}
		id := 0
		for d := 1; d < depth; d++ {
			var next []Key
			for _, parent := range level {
				for f := 0; f < fanout; f++ {
					k, err := eng.CreateOID(fmt.Sprintf("t%02d-n%03d", tr, id), "node", "bench")
					if err != nil {
						b.Fatal(err)
					}
					id++
					if _, err := eng.CreateLink(UseLink, parent, k); err != nil {
						b.Fatal(err)
					}
					next = append(next, k)
				}
			}
			level = next
		}
	}
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
	return roots
}

func parallelDrainEngine(b *testing.B, trees int, opts ...EngineOption) (*Engine, []Key) {
	b.Helper()
	bp, err := flow.PropagationBlueprint("par", "node", []string{"outofdate"})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(NewDB(), bp, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return eng, buildBenchForest(b, eng, trees, 4, 2)
}

// BenchmarkParallelDrain posts one check-in at the root of each of 8
// disjoint 15-node trees and drains the batch: under workers=1 the waves
// run back to back, under the default pool they drain concurrently.  The
// parallel sub-benchmark drives the same engine from b.RunParallel
// posters.  Run with -cpu=1,4 to see the scaling.
func BenchmarkParallelDrain(b *testing.B) {
	const trees = 8
	run := func(b *testing.B, opts ...EngineOption) {
		eng, roots := parallelDrainEngine(b, trees, opts...)
		ev := Event{Name: EventCheckin, Dir: DirDown}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range roots {
				ev.Target = r
				if err := eng.Post(ev); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Drain(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(trees), "waves/op")
	}
	b.Run("workers=1", func(b *testing.B) { run(b, WithDrainWorkers(1)) })
	b.Run("pool", func(b *testing.B) { run(b) })
	b.Run("parallel", func(b *testing.B) {
		eng, roots := parallelDrainEngine(b, trees)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				r := roots[int(next.Add(1))%len(roots)]
				if err := eng.PostAndDrain(Event{Name: EventCheckin, Dir: DirDown, Target: r}); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Drain(); err != nil {
				b.Fatal(err)
			}
			eng.WaitIdle()
		})
	})
}

// BenchmarkEventThroughputParallel is the multi-core companion of
// BenchmarkEventThroughput: concurrent posters drive check-ins into 16
// disjoint components while the drain pool processes the waves.  Compare
// ops/sec at -cpu=1 and -cpu=4 for the scaling headroom the sharded
// database and parallel drains buy.
func BenchmarkEventThroughputParallel(b *testing.B) {
	eng, roots := parallelDrainEngine(b, 16)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := roots[int(next.Add(1))%len(roots)]
			if err := eng.PostAndDrain(Event{Name: EventCheckin, Dir: DirDown, Target: r}); err != nil {
				b.Fatal(err)
			}
		}
		// Settle the backlog inside the timed region so ops/sec reflects
		// fully processed events, not just accepted ones.
		if err := eng.Drain(); err != nil {
			b.Fatal(err)
		}
		eng.WaitIdle()
	})
}

// BenchmarkBatchPost contrasts N single POST round-trips with one BATCH
// carrying N events (one parse, one drain, one response), plus a
// b.RunParallel variant hammering BATCH from concurrent clients.
func BenchmarkBatchPost(b *testing.B) {
	const batch = 64
	setup := func(b *testing.B) (*server.Server, []wire.Request, wire.Request) {
		proj := mustProject(b, EDTCExample)
		srv := server.New(proj.Engine)
		var singles []wire.Request
		var items []string
		for i := 0; i < batch; i++ {
			k := mustKey(b, proj.Engine, fmt.Sprintf("blk%02d", i%16), "HDL_model")
			singles = append(singles, wire.Request{Verb: wire.VerbPost, User: "bench",
				Args: []string{"hdl_sim", "down", k.String(), "good"}})
			items = append(items, wire.BatchItem{Event: "hdl_sim", Dir: "down",
				OID: k.String(), Args: []string{"good"}}.Encode())
		}
		return srv, singles, wire.Request{Verb: wire.VerbBatch, User: "bench", Args: items}
	}
	b.Run("single", func(b *testing.B) {
		srv, singles, _ := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, req := range singles {
				if resp := srv.Handle(req); !resp.OK {
					b.Fatal(resp.Detail)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(batch, "events/op")
	})
	b.Run("batch", func(b *testing.B) {
		srv, _, breq := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := srv.Handle(breq); !resp.OK {
				b.Fatal(resp.Detail)
			}
		}
		b.StopTimer()
		b.ReportMetric(batch, "events/op")
	})
	b.Run("parallel", func(b *testing.B) {
		srv, _, breq := setup(b)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if resp := srv.Handle(breq); !resp.OK {
					b.Fatal(resp.Detail)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(batch, "events/op")
	})

	// The round-trip savings BATCH exists for: over TCP, one batched
	// request replaces `batch` request/response cycles.
	tcp := func(b *testing.B) (*server.Client, []meta.Key) {
		proj := mustProject(b, EDTCExample)
		srv := server.New(proj.Engine)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		var keys []meta.Key
		for i := 0; i < batch; i++ {
			keys = append(keys, mustKey(b, proj.Engine, fmt.Sprintf("blk%02d", i%16), "HDL_model"))
		}
		c, err := server.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c, keys
	}
	b.Run("tcp-single", func(b *testing.B) {
		c, keys := tcp(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				if err := c.PostEvent("hdl_sim", "down", k, "good"); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(batch, "events/op")
	})
	b.Run("tcp-batch", func(b *testing.B) {
		c, keys := tcp(b)
		items := make([]wire.BatchItem, len(keys))
		for i, k := range keys {
			items[i] = wire.BatchItem{Event: "hdl_sim", Dir: "down", OID: k.String(), Args: []string{"good"}}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n, err := c.PostBatch(items); err != nil || n != batch {
				b.Fatal(n, err)
			}
		}
		b.StopTimer()
		b.ReportMetric(batch, "events/op")
	})
}
