// Command loadgen is the open-loop load harness for damocles: it drives
// a declarative mixed-op scenario (hierarchy check-ins, report/gap
// storms against pinned LSNs, workspace churn, mid-traffic blueprint
// swaps) against a real server — spawned here or already running — at a
// fixed or ramping arrival rate, measures per-op-class latency from the
// intended arrival times (coordinated omission is measured, not hidden),
// samples replication lag, and emits LOAD_<n>.json next to the BENCH
// files.  With -chaos it SIGKILLs the primary mid-run, promotes a
// follower through the real CLI, re-points the survivors, and audits
// zero acked-write loss plus the SLO recovery time.  With -partition it
// blackholes a follower's replication link mid-run (through a netfault
// proxy — both directions silent, nothing closed), audits that the dark
// follower keeps admitting its staleness, and after the heal measures
// the catch-up, the write-SLO recovery, and convergence.  See
// docs/LOAD.md.
//
// Usage:
//
//	loadgen -spawn -followers 2 -ack 1 -preset mixed -chaos -out LOAD_1.json
//	loadgen -spawn -followers 1 -ack 1 -preset smoke -partition -out LOAD_2.json
//	loadgen -addr 127.0.0.1:7077 -preset smoke
//	loadgen -scenario my.json -spawn
//	loadgen -gate -base LOAD_base.json -pr LOAD_pr.json -limit 40
//	loadgen -facts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/load"
)

func main() {
	var (
		addr      = flag.String("addr", "", "drive an already-running primary at this address")
		followers = flag.String("followers", "", "comma-separated follower addresses (with -addr), or a count (with -spawn)")
		spawn     = flag.Bool("spawn", false, "spawn a fresh cluster (primary + followers) for the run")
		bin       = flag.String("bin", "", "damocles binary for -spawn (default: go build ./cmd/damocles)")
		ack       = flag.Int("ack", 0, "quorum acks for the spawned primary (damocles -ack)")
		fsync     = flag.Bool("fsync", false, "fsync per commit on spawned nodes")
		preset    = flag.String("preset", "", "built-in scenario: smoke, mixed, soak")
		scenario  = flag.String("scenario", "", "JSON scenario spec file (overrides -preset)")
		rate      = flag.Float64("rate", 0, "override the scenario arrival rate (ops/sec)")
		duration  = flag.Duration("duration", 0, "override the scenario duration")
		workers   = flag.Int("workers", 0, "override the scenario virtual-user count")
		out       = flag.String("out", "", "output path (default: next free LOAD_<n>.json in the working dir)")
		chaos     = flag.Bool("chaos", false, "kill the primary mid-run and audit the failover (needs -spawn and followers)")
		killAfter = flag.Duration("kill-after", 0, "offset of the chaos kill (default: half the scenario duration)")
		partition = flag.Bool("partition", false, "blackhole a follower's replication link mid-run and audit liveness (needs -spawn and followers)")
		dark      = flag.Duration("dark", 0, "partition span (default: a quarter of the scenario duration)")
		sloHard   = flag.Bool("slo-enforce", false, "exit non-zero on SLO ceiling violations")
		quiet     = flag.Bool("q", false, "suppress progress logging")

		gate  = flag.Bool("gate", false, "gate mode: compare -pr against -base instead of running load")
		base  = flag.String("base", "", "gate mode: baseline LOAD json")
		pr    = flag.String("pr", "", "gate mode: candidate LOAD json")
		limit = flag.Float64("limit", 40, "gate mode: allowed p99 regression percent")

		facts = flag.Bool("facts", false, "print the runner facts JSON (gomaxprocs/numcpu/affinity) and exit")
	)
	flag.Parse()
	log.SetFlags(0)
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	if *facts {
		data, _ := json.Marshal(load.RunnerFacts())
		fmt.Println(string(data))
		return
	}
	if *gate {
		os.Exit(runGate(*base, *pr, *limit))
	}

	spec, err := resolveScenario(*preset, *scenario)
	if err != nil {
		log.Fatal(err)
	}
	if *rate > 0 {
		spec.Rate = *rate
	}
	if *duration > 0 {
		spec.Duration = load.Dur{D: *duration}
	}
	if *workers > 0 {
		spec.Workers = *workers
	}

	var (
		cluster  *load.Cluster
		primary  string
		folAddrs []string
	)
	switch {
	case *spawn:
		b := *bin
		if b == "" {
			logf("building damocles...")
			b, err = load.BuildDamocles("")
			if err != nil {
				log.Fatal(err)
			}
			defer os.Remove(b)
		}
		n := 0
		if *followers != "" {
			n, err = strconv.Atoi(*followers)
			if err != nil {
				log.Fatalf("loadgen: -spawn wants a follower count, got %q", *followers)
			}
		}
		opts := load.ClusterOpts{Followers: n, Ack: *ack, Fsync: *fsync, Logf: logf}
		if *partition {
			// Short stall timeout and fast pings so the liveness machinery
			// exercises visibly inside a short run: the dark follower must
			// notice the silence, admit staleness, and reconnect fast once
			// the link heals.
			opts.ProxyFollowers = true
			opts.StallTimeout = 1500 * time.Millisecond
			opts.PingInterval = 250 * time.Millisecond
		}
		cluster, err = load.StartCluster(b, opts)
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		primary = cluster.Primary.Addr
		folAddrs = cluster.FollowerAddrs()
	case *addr != "":
		primary = *addr
		if *followers != "" {
			folAddrs = strings.Split(*followers, ",")
		}
	default:
		log.Fatal("loadgen: need -addr or -spawn (try -spawn -preset smoke)")
	}

	r := &load.Runner{Spec: spec, Primary: primary, Followers: folAddrs, Logf: logf}
	if *chaos {
		if cluster == nil || len(folAddrs) == 0 {
			log.Fatal("loadgen: -chaos needs -spawn and at least one follower")
		}
		ka := *killAfter
		if ka <= 0 {
			ka = spec.Duration.D / 2
		}
		r.Chaos = &load.ChaosPlan{Cluster: cluster, KillAfter: ka}
		logf("chaos armed: primary dies at +%v", ka)
	}
	if *partition {
		if cluster == nil || len(folAddrs) == 0 {
			log.Fatal("loadgen: -partition needs -spawn and at least one follower")
		}
		if *chaos {
			log.Fatal("loadgen: -chaos and -partition do not combine (one fault per run)")
		}
		d := *dark
		if d <= 0 {
			d = spec.Duration.D / 4
		}
		r.Partition = &load.PartitionPlan{
			Cluster:    cluster,
			Follower:   0,
			StartAfter: spec.Duration.D / 4,
			Dark:       d,
		}
		logf("partition armed: follower 0 goes dark at +%v for %v", spec.Duration.D/4, d)
	}

	res, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}

	path, index := outPath(*out)
	res.Index = index
	resStamp(res, index)
	if err := res.WriteJSON(path); err != nil {
		log.Fatal(err)
	}
	printSummary(res, path)

	if res.Chaos != nil && res.Chaos.Enabled {
		if res.Chaos.NewPrimary == "" {
			log.Fatal("loadgen: chaos failover did not complete")
		}
		if res.Chaos.AckedLost > 0 {
			log.Fatalf("loadgen: %d ACKED WRITES LOST in failover", res.Chaos.AckedLost)
		}
	}
	if pt := res.Partition; pt != nil && pt.Enabled {
		switch {
		case !pt.StalenessSeen:
			log.Fatal("loadgen: dark follower served reads without admitting staleness")
		case !pt.Recovered:
			log.Fatal("loadgen: follower never caught the primary after the heal")
		case !pt.Converged:
			log.Fatal("loadgen: fleet did not converge after the heal")
		}
	}
	if *sloHard && len(res.SLOViolations) > 0 {
		log.Fatalf("loadgen: SLO violations: %s", strings.Join(res.SLOViolations, "; "))
	}
}

func resolveScenario(preset, file string) (load.Scenario, error) {
	if file != "" {
		return load.LoadScenario(file)
	}
	if preset == "" {
		preset = "smoke"
	}
	return load.Preset(preset)
}

// resStamp is split out so the stamp happens after Run (git state is
// read here, not inside the measurement window).
func resStamp(res *load.Result, index int) { res.Stamp(index) }

var loadFileRE = regexp.MustCompile(`^LOAD_(\d+)\.json$`)

// outPath resolves the output file: an explicit -out (index parsed from
// its name when it matches LOAD_<n>.json), or the next free index in
// the working directory.
func outPath(out string) (string, int) {
	if out != "" {
		if m := loadFileRE.FindStringSubmatch(filepath.Base(out)); m != nil {
			n, _ := strconv.Atoi(m[1])
			return out, n
		}
		return out, 0
	}
	max := 0
	entries, _ := os.ReadDir(".")
	for _, e := range entries {
		if m := loadFileRE.FindStringSubmatch(e.Name()); m != nil {
			if n, _ := strconv.Atoi(m[1]); n > max {
				max = n
			}
		}
	}
	return fmt.Sprintf("LOAD_%d.json", max+1), max + 1
}

func printSummary(res *load.Result, path string) {
	fmt.Printf("scenario %s: %d arrivals, %d completed, %d dropped, %d errors in %.1fs\n",
		res.Name, res.Arrivals, res.Completed, res.Dropped, res.ErrorsAll, res.WallS)
	for _, class := range sortedClasses(res) {
		op := res.Ops[class]
		fmt.Printf("  %-8s n=%-6d err=%-4d p50=%7.2fms p99=%7.2fms p99.9=%7.2fms max=%7.1fms %.0f ops/s\n",
			class, op.Count, op.Errors, op.P50Ms, op.P99Ms, op.P999Ms, op.MaxMs, op.Throughput)
	}
	if rep := res.Replication; rep != nil && rep.Samples > 0 {
		fmt.Printf("  replication: follower lag p50=%d p99=%d max=%d LSNs, journal lag p99=%d (n=%d)\n",
			rep.FollowerLagP50, rep.FollowerLagP99, rep.FollowerLagMax, rep.JournalLagP99, rep.Samples)
	}
	if ch := res.Chaos; ch != nil && ch.Enabled {
		fmt.Printf("  chaos: kill@%.0fms failover=%.0fms outage=%.0fms acked=%d lost=%d slo-recovery=%.0fms recovered=%v converged=%v\n",
			ch.KillAtMs, ch.FailoverMs, ch.OutageMs, ch.AckedWrites, ch.AckedLost, ch.SLORecoveryMs, ch.Recovered, ch.Converged)
	}
	if pt := res.Partition; pt != nil && pt.Enabled {
		fmt.Printf("  partition: dark@%.0fms for %.0fms staleness(max)=%.0fms catchup=%.0fms slo-recovery=%.0fms recovered=%v converged=%v\n",
			pt.StartAtMs, pt.DarkMs, pt.MaxStalenessMs, pt.CatchupMs, pt.SLORecoveryMs, pt.Recovered, pt.Converged)
	}
	for _, v := range res.SLOViolations {
		fmt.Printf("  SLO VIOLATION: %s\n", v)
	}
	fmt.Printf("wrote %s\n", path)
}

func sortedClasses(res *load.Result) []string {
	classes := make([]string, 0, len(res.Ops))
	for c := range res.Ops {
		classes = append(classes, c)
	}
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	return classes
}

// runGate compares a candidate run against a baseline run from the same
// machine: for every op class present in both with enough samples, the
// candidate p99 must stay within limit percent of the baseline (and
// regressions under an absolute 2ms floor never fail — scheduler jitter
// on tiny latencies is not a regression).  Returns the process exit code.
func runGate(basePath, prPath string, limitPct float64) int {
	if basePath == "" || prPath == "" {
		log.Print("loadgen: -gate wants -base and -pr")
		return 2
	}
	baseRes, err := load.ReadResult(basePath)
	if err != nil {
		log.Print(err)
		return 2
	}
	prRes, err := load.ReadResult(prPath)
	if err != nil {
		log.Print(err)
		return 2
	}
	const minSamples = 50
	const absFloorMs = 2.0
	failed := false
	checked := 0
	for _, class := range sortedClasses(baseRes) {
		b, p := baseRes.Ops[class], prRes.Ops[class]
		if p == nil || b.Count < minSamples || p.Count < minSamples {
			continue
		}
		checked++
		allowed := b.P99Ms * (1 + limitPct/100)
		verdict := "ok"
		if p.P99Ms > allowed && p.P99Ms-b.P99Ms > absFloorMs {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-8s p99 base=%7.2fms pr=%7.2fms allowed=%7.2fms %s\n",
			class, b.P99Ms, p.P99Ms, allowed, verdict)
	}
	if prRes.Dropped > baseRes.Dropped && prRes.Dropped > prRes.Arrivals/100 {
		fmt.Printf("drops    base=%d pr=%d (>1%% of arrivals) REGRESSION\n", baseRes.Dropped, prRes.Dropped)
		failed = true
	}
	if checked == 0 {
		log.Print("loadgen: gate compared no op classes (sample counts too low?)")
		return 2
	}
	if failed {
		fmt.Println("load gate: FAIL")
		return 1
	}
	fmt.Println("load gate: PASS")
	return 0
}
