package cli

import (
	"fmt"
	"io"

	"repro/internal/flow"
	"repro/internal/state"
)

// FlowSimConfig parameterizes a flow simulation run.
type FlowSimConfig struct {
	Mode       string // "scenario", "workload" or "dsm"
	Seed       int64
	Blocks     int
	Steps      int
	DefectRate int
}

// FlowSim runs the configured simulation and writes the report to out.
func FlowSim(out io.Writer, cfg FlowSimConfig) error {
	if cfg.Mode == "dsm" {
		res, err := flow.RunDSMScenario()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== DSM signoff scenario ===")
		fmt.Fprintf(out, "gates: %v (slack %q -> %q)\n", res.Gates, res.SlackBefore, res.SlackAfter)
		fmt.Fprintf(out, "SDF check-in re-ran STA automatically: %d run\n", res.AutoSTARuns)
		for _, n := range res.Notifications {
			fmt.Fprintln(out, "  notify:", n)
		}
		return nil
	}

	sess, rec, err := flow.NewEDTCSession(uint64(cfg.Seed))
	if err != nil {
		return err
	}
	switch cfg.Mode {
	case "scenario":
		res, err := flow.RunEDTCScenario(sess)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== section 3.4 scenario ===")
		fmt.Fprintf(out, "HDL model versions:  %v, %v, %v\n", res.HDL1, res.HDL2, res.HDL3)
		fmt.Fprintf(out, "first simulation:    %s\n", res.FirstSim)
		fmt.Fprintf(out, "second simulation:   %s\n", res.SecondSim)
		fmt.Fprintf(out, "schematics:          %v (top), %v (component)\n", res.CPUSchematic, res.REGSchematic)
		fmt.Fprintf(out, "auto-netlisted:      %v\n", res.Netlist)
		fmt.Fprintf(out, "stale after change:  %v\n", res.StaleAfterChange)
	case "workload":
		st, err := flow.Workload{
			Seed: cfg.Seed, Blocks: cfg.Blocks, Steps: cfg.Steps, EditDefectRate: cfg.DefectRate,
		}.Run(sess)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== workload ===")
		fmt.Fprintln(out, st)
	default:
		return fmt.Errorf("unknown mode %q", cfg.Mode)
	}

	fmt.Fprintln(out, "\n=== project state (latest versions) ===")
	fmt.Fprint(out, state.Format(state.Report(sess.Eng.DB(), sess.Eng.Blueprint())))

	es := sess.Eng.Stats()
	ds := sess.Eng.DB().Stats()
	fmt.Fprintln(out, "\n=== statistics ===")
	fmt.Fprintf(out, "meta-database: %d OIDs, %d links, %d chains\n", ds.OIDs, ds.Links, ds.Chains)
	fmt.Fprintf(out, "engine: %d events posted, %d deliveries, %d propagations, %d rules fired\n",
		es.Posted, es.Deliveries, es.Propagations, es.RulesFired)
	fmt.Fprintf(out, "tools: %d automatic invocations, %d notifications\n",
		len(rec.Invocations()), len(rec.Notifications()))
	return nil
}
