// Package bpl implements the BluePrint language of section 3.2 of the paper:
// the ASCII rule files which the project administrator writes to initialize
// the BluePrint.  A file contains a single
//
//	blueprint NAME ... endblueprint
//
// block holding view declarations.  Each view declares template rules
// (properties with default values and copy/move version inheritance, link
// templates with PROPAGATE event lists and TYPE annotations, continuous
// assignments) and run-time rules ("when EVENT do ACTIONS done" with
// assign, exec, notify and post actions).
//
// The package provides the lexer, parser, abstract syntax tree, expression
// evaluator for continuous assignments, semantic analyzer and a canonical
// pretty-printer whose output parses back to an identical tree.
package bpl

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword; keywords are recognized by the
	// parser from the token text (the language is context sensitive: "type"
	// is a keyword in a link clause and a legal property name elsewhere).
	TokIdent
	// TokString is a double-quoted string literal, with the quotes removed
	// and escapes processed.
	TokString
	// TokVar is a $-variable reference such as $arg or $oid, without the $.
	TokVar
	// TokAssign is "=".
	TokAssign
	// TokEq is "==".
	TokEq
	// TokNeq is "!=".
	TokNeq
	// TokLParen is "(".
	TokLParen
	// TokRParen is ")".
	TokRParen
	// TokSemi is ";".
	TokSemi
	// TokComma is ",".
	TokComma
)

// String names the kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of file"
	case TokIdent:
		return "identifier"
	case TokString:
		return "string"
	case TokVar:
		return "$variable"
	case TokAssign:
		return "'='"
	case TokEq:
		return "'=='"
	case TokNeq:
		return "'!='"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokSemi:
		return "';'"
	case TokComma:
		return "','"
	default:
		return fmt.Sprintf("TokenKind(%d)", uint8(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // identifier text, string contents, or variable name
	Line int    // 1-based
	Col  int    // 1-based, in bytes
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("%q", t.Text)
	case TokString:
		return fmt.Sprintf("%q", `"`+t.Text+`"`)
	case TokVar:
		return fmt.Sprintf("\"$%s\"", t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical or syntax error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
