package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestQuickQuoteTokenizeRoundTrip: any byte string survives
// Quote→Tokenize unchanged.
func TestQuickQuoteTokenizeRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		s := sanitize(raw)
		fields, err := Tokenize(Quote(s))
		if err != nil {
			t.Logf("Quote(%q) = %q: %v", s, Quote(s), err)
			return false
		}
		return len(fields) == 1 && fields[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickRequestRoundTrip: random requests encode and parse back
// identically.
func TestQuickRequestRoundTrip(t *testing.T) {
	verbs := []string{VerbPost, VerbCreate, VerbState, VerbPing, VerbLatest}
	f := func(seed int64, argData [][]byte) bool {
		rng := rand.New(rand.NewSource(seed))
		req := Request{Verb: verbs[rng.Intn(len(verbs))]}
		if rng.Intn(2) == 0 {
			req.User = "user" + sanitize([]byte{byte('a' + rng.Intn(26))})
		}
		for i, a := range argData {
			if i >= 6 {
				break
			}
			req.Args = append(req.Args, sanitize(a))
		}
		got, err := ParseRequest(req.Encode())
		if err != nil {
			t.Logf("encode %+v -> %q: %v", req, req.Encode(), err)
			return false
		}
		return got.Verb == req.Verb && got.User == req.User &&
			reflect.DeepEqual(got.Args, req.Args)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// sanitize maps arbitrary bytes into the value space the protocol
// supports: no NUL and valid single-byte content (the protocol is
// byte-oriented; newlines, tabs, quotes and backslashes are all escaped by
// Quote).
func sanitize(raw []byte) string {
	out := make([]byte, 0, len(raw))
	for _, b := range raw {
		if b == 0 {
			continue
		}
		out = append(out, b)
	}
	return string(out)
}
