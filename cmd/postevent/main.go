// Command postevent is the wrapper-program helper of section 3.1: it posts
// one design event message to the project server, exactly in the paper's
// syntax:
//
//	postEvent ckin up reg,verilog,4 "logic sim passed"
//
// Usage:
//
//	postevent [-addr host:port] [-user name] <event> <up|down> <block,view,version> [args...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/meta"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("postevent: ")
	addr := flag.String("addr", "127.0.0.1:7495", "project server address")
	user := flag.String("user", os.Getenv("USER"), "posting designer")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: postevent [flags] <event> <up|down> <block,view,version> [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 3 {
		flag.Usage()
		os.Exit(2)
	}
	args := flag.Args()
	target, err := meta.ParseKey(args[2])
	if err != nil {
		log.Fatal(err)
	}
	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	c.User = *user
	if err := c.PostEvent(args[0], args[1], target, args[3:]...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("posted %s %s %s\n", args[0], args[1], target)
}
