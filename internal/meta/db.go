package meta

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// DB is the DAMOCLES meta-database: an in-memory, concurrency-safe store of
// OIDs, Links, Configurations and workspace bindings.  A DB models one
// project; the paper's project server owns exactly one.
//
// # Sharding and locking
//
// The hot maps are lock-striped so concurrent drains, queries and state
// reports stop serializing on one mutex.  OIDs, version chains and the
// adjacency indexes are partitioned into shards keyed by the hash of the
// block name — every view, version and adjacency list of a block lives on
// one shard, so the single-OID hot paths (HasOID, GetProp, UpdateOID,
// WithOID, Latest, Predecessor, EachLinkOf) take exactly one shard lock.
// Link objects live in separate stripes keyed by LinkID and are immutable
// once published (mutators install a replacement object), which is what
// lets link walks read them under the shard lock alone.  Configurations
// and workspaces sit on a small control-plane lock; the logical clock and
// link-ID counter are atomics.  NewDBWithShards picks the stripe count —
// a pure performance knob that never changes results.
//
// Multi-shard operations follow one deterministic lock order — control
// plane, then key shards in ascending index, then link stripes in
// ascending index — so cross-shard link walks (graph traversals,
// snapshots, pruning) cannot deadlock.  Operations that discover their
// shard set from a link's endpoints (DeleteLink, RetargetLink, the
// annotation setters) snapshot the link optimistically, lock in canonical
// order, then re-validate object identity and retry if it was replaced
// underneath them.
//
// All mutation goes through DB methods.  Read accessors either return deep
// copies (safe to retain) or, for the Each* iterators, expose internal
// objects under the owning locks: iterator callbacks must not retain or
// mutate the objects they are handed and must not call DB methods (which
// would deadlock).  EachOID, EachLatestOID and the Select*/Latest* queries
// visit shards one at a time: each shard is internally consistent, but the
// iteration is not a point-in-time snapshot of the whole database when
// writers run concurrently.
//
// Whole-database reads have two tiers.  With MVCC enabled (mvcc.go —
// automatic on journaled and follower databases), Save, the Snapshot*
// configuration builders, the state streams, and the graph walks
// (Reachable, Dependents, Equivalents, Resolve — see graphview.go for the
// versioned reachability index behind them) read from LSN-pinned
// lock-free views and never pause writers.  Without it, they read-lock
// every shard and stripe for their duration; PruneVersions write-locks
// everything either way.
type DB struct {
	shards []*dbShard
	mask   uint32

	stripes []*linkStripe
	lmask   uint32

	seq      atomic.Int64
	nextLink atomic.Int64

	// appliedLSN is the journal position of the newest record applied via
	// ApplyRecord — on a replication follower, the read-your-LSN horizon a
	// client can wait on before querying.  Zero on a database that has
	// never replayed records.
	appliedLSN atomic.Int64

	// terms is the election-term table (term.go): one TermStart per
	// promotion this database's history has lived through, copy-on-write
	// behind the pointer so handshake validation and Save read it without
	// locks.  nil means the genesis term 1.
	terms atomic.Pointer[termTable]

	// ctl guards the control plane: configurations and workspaces.
	ctl        sync.RWMutex
	configs    map[string]*Configuration
	workspaces map[string]*Workspace

	// Block connectivity (union-find) for the engine's wave-conflict
	// analysis; see component.go.
	compMu  sync.Mutex
	comp    map[string]string
	compGen atomic.Int64

	// rec, when non-nil, receives one Record per committed mutation — the
	// change-capture stream behind the append-only journal.  Emission
	// happens under the locks that serialize the mutation; see record.go.
	rec Recorder

	// MVCC state (mvcc.go): with version tracking enabled, every mutation
	// publishes immutable LSN-stamped versions and readers pin lock-free
	// point-in-time views.  ctlH holds the control plane's histories;
	// replayAt carries the record LSN being replayed so ApplyRecord's
	// inner mutations stamp with the original numbering; compChurn counts
	// propagating-link removals since the last component rebuild.
	mvcc      mvccState
	ctlH      atomic.Pointer[ctlHist]
	replayAt  atomic.Int64
	replaySeq atomic.Int64
	compChurn atomic.Int64
}

// dbShard holds one stripe of the OID/chain/adjacency maps.  Every key in
// all four maps hashes to this shard.
type dbShard struct {
	mu       sync.RWMutex
	oids     map[Key]*OID
	chains   map[BlockView][]int
	outLinks map[Key][]linkRef
	inLinks  map[Key][]linkRef

	// hist is the shard's MVCC version store; the container is replaced
	// wholesale on RestoreFrom so pinned views survive a re-base.
	hist atomic.Pointer[shardHist]
}

// linkRef pairs a link ID with its current object in the adjacency lists,
// so link walks resolve links under the shard lock alone — no stripe
// round-trip per link on the propagation hot path.
//
// Link objects are immutable once published: every mutation (SetLinkProp,
// SetLinkPropagates, RetargetLink) installs a replacement object in the
// stripe map and in both endpoints' adjacency refs while holding the
// endpoint shard locks and the stripe lock.  Readers therefore never see a
// link change underneath them, only an older or newer complete object.
type linkRef struct {
	id LinkID
	l  *Link
}

// linkStripe holds one stripe of the link table, keyed by LinkID.
type linkStripe struct {
	mu    sync.RWMutex
	links map[LinkID]*Link

	hist atomic.Pointer[stripeHist]
}

// DefaultShards is the shard count of NewDB: enough stripes to spread a
// worker pool's drains without bloating small databases.
const DefaultShards = 16

// NewDB returns an empty meta-database with DefaultShards shards.
func NewDB() *DB { return NewDBWithShards(DefaultShards) }

// NewDBWithShards returns an empty meta-database striped over n shards
// (rounded up to a power of two, minimum 1).  Shard count is a pure
// performance knob: every query and report returns identical results for
// any n.
func NewDBWithShards(n int) *DB {
	if n < 1 {
		n = 1
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	db := &DB{
		shards:     make([]*dbShard, pow),
		mask:       uint32(pow - 1),
		stripes:    make([]*linkStripe, pow),
		lmask:      uint32(pow - 1),
		configs:    make(map[string]*Configuration),
		workspaces: make(map[string]*Workspace),
		comp:       make(map[string]string),
	}
	for i := range db.shards {
		db.shards[i] = &dbShard{
			oids:     make(map[Key]*OID),
			chains:   make(map[BlockView][]int),
			outLinks: make(map[Key][]linkRef),
			inLinks:  make(map[Key][]linkRef),
		}
		db.shards[i].hist.Store(&shardHist{})
	}
	for i := range db.stripes {
		db.stripes[i] = &linkStripe{links: make(map[LinkID]*Link)}
		db.stripes[i].hist.Store(&stripeHist{})
	}
	db.ctlH.Store(&ctlHist{})
	return db
}

// blockHash is FNV-1a over the block name.  Sharding is by block alone:
// every view and version of a block — and therefore every version chain of
// it, and every rule-posted event between its views — lands on one shard.
// That keeps the hash off the hot path short and makes a wave's intra-block
// work single-shard.
func blockHash(block string) uint32 {
	const prime32 = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(block); i++ {
		h = (h ^ uint32(block[i])) * prime32
	}
	return h
}

func (db *DB) shardIndex(block string) uint32 { return blockHash(block) & db.mask }
func (db *DB) shardOf(k Key) *dbShard         { return db.shards[db.shardIndex(k.Block)] }
func (db *DB) stripeOf(id LinkID) *linkStripe { return db.stripes[uint32(id)&db.lmask] }

// lockPair write-locks the shards of two keys in ascending index order
// (once when they coincide) and returns them.  unlockPair releases in
// reverse.
func (db *DB) lockPair(a, b Key) (sa, sb *dbShard) {
	ia, ib := db.shardIndex(a.Block), db.shardIndex(b.Block)
	sa, sb = db.shards[ia], db.shards[ib]
	switch {
	case ia == ib:
		sa.mu.Lock()
	case ia < ib:
		sa.mu.Lock()
		sb.mu.Lock()
	default:
		sb.mu.Lock()
		sa.mu.Lock()
	}
	return sa, sb
}

func unlockPair(sa, sb *dbShard) {
	sa.mu.Unlock()
	if sb != sa {
		sb.mu.Unlock()
	}
}

// lockAll / unlockAll write-lock every shard then every stripe, in
// ascending index order — the whole-database critical section behind
// pruning and loading.
func (db *DB) lockAll() {
	for _, s := range db.shards {
		s.mu.Lock()
	}
	for _, s := range db.stripes {
		s.mu.Lock()
	}
}

func (db *DB) unlockAll() {
	for i := len(db.stripes) - 1; i >= 0; i-- {
		db.stripes[i].mu.Unlock()
	}
	for i := len(db.shards) - 1; i >= 0; i-- {
		db.shards[i].mu.Unlock()
	}
}

// rlockAll / runlockAll are the shared-mode form of lockAll, used by
// cross-shard graph walks and snapshots: concurrent readers still proceed,
// writers wait.
func (db *DB) rlockAll() {
	for _, s := range db.shards {
		s.mu.RLock()
	}
	for _, s := range db.stripes {
		s.mu.RLock()
	}
}

func (db *DB) runlockAll() {
	for i := len(db.stripes) - 1; i >= 0; i-- {
		db.stripes[i].mu.RUnlock()
	}
	for i := len(db.shards) - 1; i >= 0; i-- {
		db.shards[i].mu.RUnlock()
	}
}

// linkLocked resolves a link by ID.  Callers hold the relevant stripe lock
// (or all stripes).
func (db *DB) linkLocked(id LinkID) *Link {
	return db.stripeOf(id).links[id]
}

// tick advances and returns the logical clock.
func (db *DB) tick() int64 { return db.seq.Add(1) }

// Seq returns the current logical time: the Seq of the most recently created
// object.
func (db *DB) Seq() int64 { return db.seq.Load() }

// ---------------------------------------------------------------------------
// OIDs and version chains

// NewVersion creates the next version of (block, view) and returns its key.
// The first version of a chain is 1.  Properties start empty; the run-time
// engine applies BluePrint template rules on top.
func (db *DB) NewVersion(block, view string) (Key, error) {
	if err := ValidateName(block); err != nil {
		return Key{}, fmt.Errorf("block: %w", err)
	}
	if err := ValidateName(view); err != nil {
		return Key{}, fmt.Errorf("view: %w", err)
	}
	sh := db.shards[db.shardIndex(block)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bv := BlockView{Block: block, View: view}
	chain := sh.chains[bv]
	next := 1
	if len(chain) > 0 {
		next = chain[len(chain)-1] + 1
	}
	k := Key{Block: block, View: view, Version: next}
	o := &OID{Key: k, Props: make(map[string]string), Seq: db.tick()}
	sh.oids[k] = o
	sh.chains[bv] = append(chain, next)
	tok := db.beginMut(OpOID, 0, func() []string {
		return []string{k.String(), strconv.FormatInt(o.Seq, 10)}
	})
	if tok.on {
		db.histOIDPush(sh, k, tok.s, o, false)
		db.histChainPush(sh, bv, tok.s)
	}
	db.endMut(tok)
	return k, nil
}

// InsertOID inserts an OID with an explicit version number.  It is used by
// persistence reload; NewVersion is the normal creation path.  The version
// must be greater than the newest version in the chain — gaps are legal
// because old versions may have been pruned (see PruneVersions).
func (db *DB) InsertOID(k Key) error {
	if err := k.Validate(); err != nil {
		return err
	}
	sh := db.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.oids[k]; ok {
		return fmt.Errorf("oid %v: %w", k, ErrExists)
	}
	bv := k.BV()
	chain := sh.chains[bv]
	if len(chain) > 0 && k.Version <= chain[len(chain)-1] {
		return fmt.Errorf("oid %v: chain is already at version %d: %w",
			k, chain[len(chain)-1], ErrBadVersion)
	}
	o := &OID{Key: k, Props: make(map[string]string), Seq: db.tick()}
	sh.oids[k] = o
	sh.chains[bv] = append(chain, k.Version)
	tok := db.beginMut(OpOID, 0, func() []string {
		return []string{k.String(), strconv.FormatInt(o.Seq, 10)}
	})
	if tok.on {
		db.histOIDPush(sh, k, tok.s, o, false)
		db.histChainPush(sh, bv, tok.s)
	}
	db.endMut(tok)
	return nil
}

// PruneVersions removes all but the newest keep versions of (block, view)
// from the database, along with every link incident to the removed OIDs —
// the archival purge a long-running project performs on validated history
// (cf. Silva et al., "Protection and Versioning for OCT", DAC 1989, which
// the paper cites).  Version numbering is preserved: the chain keeps
// counting from its highest version.  It returns the number of OIDs
// removed.  keep must be at least 1.
//
// Pruning locks the whole database (incident links may land on any shard).
func (db *DB) PruneVersions(block, view string, keep int) (int, error) {
	if keep < 1 {
		return 0, fmt.Errorf("prune %s.%s: keep %d: %w", block, view, keep, ErrBadVersion)
	}
	db.lockAll()
	defer db.unlockAll()
	sh := db.shards[db.shardIndex(block)]
	bv := BlockView{Block: block, View: view}
	chain := sh.chains[bv]
	if len(chain) == 0 {
		return 0, fmt.Errorf("prune %s.%s: %w", block, view, ErrNotFound)
	}
	if len(chain) <= keep {
		return 0, nil
	}
	drop := chain[:len(chain)-keep]
	var removedLinks []LinkID
	outTouched := make(map[Key]bool)
	inTouched := make(map[Key]bool)
	for _, v := range drop {
		k := Key{Block: block, View: view, Version: v}
		// Remove incident links first.
		for _, r := range append(append([]linkRef(nil), sh.outLinks[k]...), sh.inLinks[k]...) {
			st := db.stripeOf(r.id)
			l, ok := st.links[r.id]
			if !ok {
				continue
			}
			delete(st.links, r.id)
			fs, ts := db.shardOf(l.From), db.shardOf(l.To)
			fs.outLinks[l.From] = removeRef(fs.outLinks[l.From], r.id)
			ts.inLinks[l.To] = removeRef(ts.inLinks[l.To], r.id)
			outTouched[l.From] = true
			inTouched[l.To] = true
			removedLinks = append(removedLinks, r.id)
			if len(l.Propagates) > 0 {
				db.compChurn.Add(1)
			}
		}
		delete(sh.outLinks, k)
		delete(sh.inLinks, k)
		delete(sh.oids, k)
		outTouched[k] = true
		inTouched[k] = true
	}
	sh.chains[bv] = append([]int(nil), chain[len(chain)-keep:]...)
	tok := db.beginMut(OpPrune, 0, func() []string {
		return []string{block, view, strconv.Itoa(keep)}
	})
	if tok.on {
		for _, v := range drop {
			db.histOIDPush(sh, Key{Block: block, View: view, Version: v}, tok.s, nil, true)
		}
		for _, id := range removedLinks {
			db.histLinkPushLocked(id, tok.s, nil)
		}
		for k := range outTouched {
			db.histAdjPush(db.shardOf(k), k, tok.s, true)
		}
		for k := range inTouched {
			db.histAdjPush(db.shardOf(k), k, tok.s, false)
		}
		db.histChainPush(sh, bv, tok.s)
	}
	db.endMut(tok)
	return len(drop), nil
}

// HasOID reports whether the OID exists.
func (db *DB) HasOID(k Key) bool {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.oids[k]
	return ok
}

// GetOID returns a deep copy of the OID.
func (db *DB) GetOID(k Key) (*OID, error) {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.oids[k]
	if !ok {
		return nil, fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	return o.clone(), nil
}

// Latest returns the key of the newest version of (block, view).
func (db *DB) Latest(block, view string) (Key, error) {
	sh := db.shards[db.shardIndex(block)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[BlockView{Block: block, View: view}]
	if len(chain) == 0 {
		return Key{}, fmt.Errorf("no versions of %s.%s: %w", block, view, ErrNotFound)
	}
	return Key{Block: block, View: view, Version: chain[len(chain)-1]}, nil
}

// Versions returns the version numbers of (block, view) in ascending order.
func (db *DB) Versions(block, view string) []int {
	sh := db.shards[db.shardIndex(block)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[BlockView{Block: block, View: view}]
	out := make([]int, len(chain))
	copy(out, chain)
	return out
}

// Predecessor returns the key of the version immediately preceding k in its
// chain, or ok=false if k is the first version.  Chains are ascending, so
// the position is found by binary search.
func (db *DB) Predecessor(k Key) (Key, bool) {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[k.BV()]
	i := sort.SearchInts(chain, k.Version)
	if i >= len(chain) || chain[i] != k.Version || i == 0 {
		return Key{}, false
	}
	return Key{Block: k.Block, View: k.View, Version: chain[i-1]}, true
}

// SetProp sets a property on an OID.
func (db *DB) SetProp(k Key, name, value string) error {
	if err := ValidateName(name); err != nil {
		return fmt.Errorf("property: %w", err)
	}
	sh := db.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o, ok := sh.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	o.Props[name] = value
	tok := db.beginMut(OpUpdate, 0, func() []string {
		return []string{k.String(), "1", name, value}
	})
	if tok.on {
		db.histOIDPush(sh, k, tok.s, o, false)
	}
	db.endMut(tok)
	return nil
}

// WithOID runs fn on the live OID under the owning shard's read lock — a
// batched read path for callers that need several properties at once
// without paying for a deep copy (GetOID) or one lock round-trip per
// GetProp.  fn must not retain or mutate the OID and must not call other DB
// methods.
func (db *DB) WithOID(k Key, fn func(o *OID)) error {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	fn(o)
	return nil
}

// UpdateOID runs fn on the live OID under the owning shard's write lock.
// It is the batched read-modify-write path of the run-time engine: one
// delivery's property assignments and continuous re-evaluations read and
// write Props in a single lock round-trip instead of one GetProp/SetProp
// pair each — and, under sharding, deliveries to OIDs on different shards
// update concurrently.  fn may read and mutate o.Props directly but must
// not retain o or the map and must not call other DB methods (which would
// deadlock).  Property names written by fn must satisfy ValidateName; the
// caller validates because fn has no error channel.
//
// With a Recorder or MVCC attached, the property map is diffed around fn
// and the net change journaled (and versioned) as one update; an fn that
// changes nothing emits nothing.  With MVCC on, the diff runs against the
// newest published version's map — which always mirrors the live map —
// so no pre-copy is needed.
func (db *DB) UpdateOID(k Key, fn func(o *OID)) error {
	sh := db.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o, ok := sh.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	on := db.mvcc.on.Load()
	if db.rec == nil && !on {
		fn(o)
		return nil
	}
	var before map[string]string
	if on {
		before = db.histOIDPrev(sh, k)
	} else {
		before = make(map[string]string, len(o.Props))
		for n, v := range o.Props {
			before[n] = v
		}
	}
	fn(o)
	var sets map[string]string
	for n, v := range o.Props {
		if ov, had := before[n]; !had || ov != v {
			if sets == nil {
				sets = make(map[string]string)
			}
			sets[n] = v
		}
	}
	var dels []string
	for n := range before {
		if _, still := o.Props[n]; !still {
			dels = append(dels, n)
		}
	}
	if len(sets) == 0 && len(dels) == 0 {
		return nil
	}
	tok := db.beginMut(OpUpdate, 0, func() []string {
		return propArgs([]string{k.String()}, sets, dels)
	})
	if tok.on {
		db.histOIDPush(sh, k, tok.s, o, false)
	}
	db.endMut(tok)
	return nil
}

// GetProp returns a property value of an OID.  Missing properties return
// ("", false, nil); a missing OID is an error.
func (db *DB) GetProp(k Key, name string) (string, bool, error) {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.oids[k]
	if !ok {
		return "", false, fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	v, ok := o.Props[name]
	return v, ok, nil
}

// DelProp removes a property from an OID.  Removing an absent property is a
// no-op.
func (db *DB) DelProp(k Key, name string) error {
	sh := db.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o, ok := sh.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	if _, had := o.Props[name]; had {
		delete(o.Props, name)
		tok := db.beginMut(OpUpdate, 0, func() []string {
			return []string{k.String(), "0", name}
		})
		if tok.on {
			db.histOIDPush(sh, k, tok.s, o, false)
		}
		db.endMut(tok)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Links

// AddLink inserts a link between two existing OIDs and returns its ID.
// Class-specific invariants are checked (a use link must not cross view
// types).  propagates may be nil; template and props may be empty.
func (db *DB) AddLink(class LinkClass, from, to Key, template string, propagates []string, props map[string]string) (LinkID, error) {
	l := &Link{
		Class:      class,
		From:       from,
		To:         to,
		Template:   template,
		Props:      make(map[string]string, len(props)),
		Propagates: make(map[string]bool, len(propagates)),
	}
	for k, v := range props {
		l.Props[k] = v
	}
	for _, e := range propagates {
		l.Propagates[e] = true
	}
	if err := l.validate(); err != nil {
		return 0, err
	}
	sf, st := db.lockPair(from, to)
	defer unlockPair(sf, st)
	if _, ok := sf.oids[from]; !ok {
		return 0, fmt.Errorf("link from %v: %w", from, ErrNotFound)
	}
	if _, ok := st.oids[to]; !ok {
		return 0, fmt.Errorf("link to %v: %w", to, ErrNotFound)
	}
	// Merge the block components before the link is visible (we hold both
	// endpoint shard locks, so nothing can observe the link yet): the
	// engine's wave-conflict analysis must never see a propagating link
	// between blocks it believes disjoint.  Validation came first —
	// components never split, so a failed AddLink must not coarsen the
	// partition for the database's lifetime.
	if len(l.Propagates) > 0 {
		db.unionBlocks(from.Block, to.Block)
	}
	l.ID = LinkID(db.nextLink.Add(1))
	l.Seq = db.tick()
	stripe := db.stripeOf(l.ID)
	stripe.mu.Lock()
	stripe.links[l.ID] = l
	stripe.mu.Unlock()
	sf.outLinks[from] = append(sf.outLinks[from], linkRef{id: l.ID, l: l})
	st.inLinks[to] = append(st.inLinks[to], linkRef{id: l.ID, l: l})
	tok := db.beginMut(OpLink, int64(l.ID), func() []string { return linkArgs(l) })
	if tok.on {
		stripe.mu.Lock()
		db.histLinkPushLocked(l.ID, tok.s, l)
		stripe.mu.Unlock()
		db.histAdjPush(sf, from, tok.s, true)
		db.histAdjPush(st, to, tok.s, false)
	}
	db.endMut(tok)
	return l.ID, nil
}

// GetLink returns a deep copy of the link.
func (db *DB) GetLink(id LinkID) (*Link, error) {
	st := db.stripeOf(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	l, ok := st.links[id]
	if !ok {
		return nil, fmt.Errorf("link %d: %w", id, ErrNotFound)
	}
	return l.clone(), nil
}

// snapshotLink reads the current (immutable) link object optimistically,
// under the stripe read lock only.  DeleteLink and the mutators use it to
// discover which shards to lock, then verify the object is still current
// (pointer identity) once the locks are held.
func (db *DB) snapshotLink(id LinkID) *Link {
	st := db.stripeOf(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.links[id]
}

// DeleteLink removes a link.
func (db *DB) DeleteLink(id LinkID) error {
	for {
		l := db.snapshotLink(id)
		if l == nil {
			return fmt.Errorf("link %d: %w", id, ErrNotFound)
		}
		sf, st := db.lockPair(l.From, l.To)
		stripe := db.stripeOf(id)
		stripe.mu.Lock()
		if stripe.links[id] != l {
			// The link vanished or was replaced between the optimistic read
			// and the locks; retry against the new object.
			stripe.mu.Unlock()
			unlockPair(sf, st)
			continue
		}
		delete(stripe.links, id)
		sf.outLinks[l.From] = removeRef(sf.outLinks[l.From], id)
		st.inLinks[l.To] = removeRef(st.inLinks[l.To], id)
		if len(l.Propagates) > 0 {
			// The merge-only component partition is now conservatively
			// coarse; count it toward the periodic exact rebuild.
			db.compChurn.Add(1)
		}
		tok := db.beginMut(OpDelLink, 0, func() []string {
			return []string{strconv.FormatInt(int64(id), 10)}
		})
		if tok.on {
			db.histLinkPushLocked(id, tok.s, nil)
			db.histAdjPush(sf, l.From, tok.s, true)
			db.histAdjPush(st, l.To, tok.s, false)
		}
		db.endMut(tok)
		stripe.mu.Unlock()
		unlockPair(sf, st)
		return nil
	}
}

// RetargetLink moves one endpoint of a link from oldEnd to newEnd.  It
// implements the link "shifting" of Figure 3: when a new version of an OID
// is created, move-mode links are shifted from the previous version to the
// new one.  oldEnd must currently be an endpoint of the link.
func (db *DB) RetargetLink(id LinkID, oldEnd, newEnd Key) error {
	for {
		l := db.snapshotLink(id)
		if l == nil {
			return fmt.Errorf("link %d: %w", id, ErrNotFound)
		}
		from, to := l.From, l.To
		if oldEnd != from && oldEnd != to {
			return fmt.Errorf("link %d: %v is not an endpoint: %w", id, oldEnd, ErrBadLink)
		}
		// Build and validate the replacement object before taking locks;
		// links are immutable once published, so shifting installs a copy.
		moved := l.clone()
		if oldEnd == from {
			moved.From = newEnd
		} else {
			moved.To = newEnd
		}
		if err := moved.validate(); err != nil {
			return err
		}
		// Lock the shards of every involved key in canonical order.
		locked := db.lockShardSet([]uint32{
			db.shardIndex(from.Block),
			db.shardIndex(to.Block),
			db.shardIndex(newEnd.Block),
		})
		stripe := db.stripeOf(id)
		stripe.mu.Lock()
		if stripe.links[id] != l {
			stripe.mu.Unlock()
			db.unlockShardSet(locked)
			continue // replaced underneath us; retry
		}
		ns := db.shardOf(newEnd)
		if _, ok := ns.oids[newEnd]; !ok {
			stripe.mu.Unlock()
			db.unlockShardSet(locked)
			return fmt.Errorf("retarget to %v: %w", newEnd, ErrNotFound)
		}
		// Keep the conflict analysis conservative: the new endpoint's
		// block joins the component before the shifted link is visible.
		// Validation came first so a failed retarget never coarsens the
		// never-splitting partition.
		if len(l.Propagates) > 0 {
			other := from
			if oldEnd == from {
				other = to
			}
			db.unionBlocks(other.Block, newEnd.Block)
		}
		stripe.links[id] = moved
		os := db.shardOf(oldEnd)
		if oldEnd == from {
			os.outLinks[oldEnd] = removeRef(os.outLinks[oldEnd], id)
			ns.outLinks[newEnd] = append(ns.outLinks[newEnd], linkRef{id: id, l: moved})
			replaceRef(db.shardOf(to).inLinks[to], id, moved)
		} else {
			os.inLinks[oldEnd] = removeRef(os.inLinks[oldEnd], id)
			ns.inLinks[newEnd] = append(ns.inLinks[newEnd], linkRef{id: id, l: moved})
			replaceRef(db.shardOf(from).outLinks[from], id, moved)
		}
		if len(l.Propagates) > 0 {
			db.compChurn.Add(1)
		}
		tok := db.beginMut(OpRetarget, 0, func() []string {
			return []string{strconv.FormatInt(int64(id), 10), oldEnd.String(), newEnd.String()}
		})
		if tok.on {
			db.histLinkPushLocked(id, tok.s, moved)
			// Three postings change: the list the link left, the list it
			// joined, and the unmoved end's list (its refs now carry the
			// replacement object).
			if oldEnd == from {
				db.histAdjPush(os, oldEnd, tok.s, true)
				db.histAdjPush(ns, newEnd, tok.s, true)
				db.histAdjPush(db.shardOf(to), to, tok.s, false)
			} else {
				db.histAdjPush(os, oldEnd, tok.s, false)
				db.histAdjPush(ns, newEnd, tok.s, false)
				db.histAdjPush(db.shardOf(from), from, tok.s, true)
			}
		}
		db.endMut(tok)
		stripe.mu.Unlock()
		db.unlockShardSet(locked)
		return nil
	}
}

// lockShardSet write-locks the distinct shards of the given indexes in
// ascending order and returns the sorted distinct index list for unlocking.
func (db *DB) lockShardSet(idx []uint32) []uint32 {
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	out := idx[:0]
	var last uint32
	for i, v := range idx {
		if i > 0 && v == last {
			continue
		}
		db.shards[v].mu.Lock()
		out = append(out, v)
		last = v
	}
	return out
}

func (db *DB) unlockShardSet(idx []uint32) {
	for i := len(idx) - 1; i >= 0; i-- {
		db.shards[idx[i]].mu.Unlock()
	}
}

// SetLinkProp sets an annotation property on a link.
func (db *DB) SetLinkProp(id LinkID, name, value string) error {
	return db.replaceLink(id, func(nl *Link) {
		nl.Props[name] = value
	}, func(*Link) (string, []string) {
		return OpLinkUpdate, []string{strconv.FormatInt(int64(id), 10), "1", name, value}
	})
}

// SetLinkPropagates replaces the PROPAGATE set of a link.
func (db *DB) SetLinkPropagates(id LinkID, events []string) error {
	wasPropagating := false
	err := db.replaceLink(id, func(nl *Link) {
		wasPropagating = len(nl.Propagates) > 0
		nl.Propagates = make(map[string]bool, len(events))
		for _, e := range events {
			nl.Propagates[e] = true
		}
		if len(events) > 0 {
			db.unionBlocks(nl.From.Block, nl.To.Block)
		}
	}, func(nl *Link) (string, []string) {
		return OpPropagates, append([]string{strconv.FormatInt(int64(id), 10)}, nl.PropagateList()...)
	})
	if err == nil && wasPropagating && len(events) == 0 {
		// Emptying the set never splits the merge-only component
		// partition in place; count it toward the periodic rebuild.
		// Only a successful transition counts — failed or no-op calls
		// must not schedule spurious whole-database rebuilds.
		db.compChurn.Add(1)
	}
	return err
}

// replaceLink installs a mutated copy of a link: links are immutable once
// published, so in-place annotation edits clone the object, apply mutate,
// and swap the clone into the stripe map and both adjacency refs under the
// endpoint shard locks.  Retries if the link is replaced concurrently.
// record builds the journal record describing the installed object and
// must be non-nil whenever a Recorder may be attached; it runs inside the
// critical section.
func (db *DB) replaceLink(id LinkID, mutate func(nl *Link), record func(nl *Link) (string, []string)) error {
	for {
		l := db.snapshotLink(id)
		if l == nil {
			return fmt.Errorf("link %d: %w", id, ErrNotFound)
		}
		nl := l.clone()
		mutate(nl)
		sf, st := db.lockPair(l.From, l.To)
		stripe := db.stripeOf(id)
		stripe.mu.Lock()
		if stripe.links[id] != l {
			stripe.mu.Unlock()
			unlockPair(sf, st)
			continue
		}
		stripe.links[id] = nl
		replaceRef(sf.outLinks[l.From], id, nl)
		replaceRef(st.inLinks[l.To], id, nl)
		var tok mutTok
		if db.rec != nil && record != nil {
			op, args := record(nl)
			tok = db.beginMut(op, 0, func() []string { return args })
		} else {
			tok = db.beginMut("", 0, nil)
		}
		if tok.on {
			db.histLinkPushLocked(id, tok.s, nl)
			db.histAdjPush(sf, l.From, tok.s, true)
			db.histAdjPush(st, l.To, tok.s, false)
		}
		db.endMut(tok)
		stripe.mu.Unlock()
		unlockPair(sf, st)
		return nil
	}
}

// LinksFrom returns copies of all links whose From endpoint is k.
func (db *DB) LinksFrom(k Key) []*Link {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return cloneLinks(nil, sh.outLinks[k])
}

// LinksTo returns copies of all links whose To endpoint is k.
func (db *DB) LinksTo(k Key) []*Link {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return cloneLinks(nil, sh.inLinks[k])
}

// LinksOf returns copies of all links incident to k, in either direction.
func (db *DB) LinksOf(k Key) []*Link {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := cloneLinks(nil, sh.outLinks[k])
	return cloneLinks(out, sh.inLinks[k])
}

// cloneLinks appends deep copies of the referenced links to dst.  Callers
// hold the adjacency owner's shard lock; the refs carry the immutable link
// objects, so no stripe locks are needed.
func cloneLinks(dst []*Link, refs []linkRef) []*Link {
	if len(refs) == 0 {
		return dst
	}
	if dst == nil {
		dst = make([]*Link, 0, len(refs))
	}
	for _, r := range refs {
		dst = append(dst, r.l.clone())
	}
	return dst
}

// EachLinkOf invokes fn for every link incident to k, outgoing first, under
// the owning shard's read lock.  fn must not retain or mutate the link and
// must not call other DB methods.  Returning false stops the iteration.
func (db *DB) EachLinkOf(k Key, fn func(*Link) bool) {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, r := range sh.outLinks[k] {
		if !fn(r.l) {
			return
		}
	}
	for _, r := range sh.inLinks[k] {
		if !fn(r.l) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Enumeration and statistics

// EachOID invokes fn for every OID, shard by shard under each shard's read
// lock, in unspecified order.  fn must not retain or mutate the OID and
// must not call other DB methods.  Returning false stops the iteration.
// The pass is per-shard consistent, not a whole-database snapshot.
func (db *DB) EachOID(fn func(*OID) bool) {
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, o := range sh.oids {
			if !fn(o) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// EachLatestOID invokes fn for the newest version of every version chain,
// shard by shard under each shard's read lock, in unspecified order.  It is
// the allocation-free form of LatestOIDs: fn must not retain or mutate the
// OID and must not call other DB methods.  Returning false stops the
// iteration.  The pass is per-shard consistent, not a whole-database
// snapshot.
func (db *DB) EachLatestOID(fn func(*OID) bool) {
	for _, sh := range db.shards {
		sh.mu.RLock()
		for bv, chain := range sh.chains {
			if len(chain) == 0 {
				continue
			}
			k := Key{Block: bv.Block, View: bv.View, Version: chain[len(chain)-1]}
			if o, ok := sh.oids[k]; ok && !fn(o) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Keys returns every OID key, sorted by block, view, version.
func (db *DB) Keys() []Key {
	keys := make([]Key, 0, db.countOIDs())
	for _, sh := range db.shards {
		sh.mu.RLock()
		for k := range sh.oids {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sortKeys(keys)
	return keys
}

func (db *DB) countOIDs() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		n += len(sh.oids)
		sh.mu.RUnlock()
	}
	return n
}

// BlockViews returns every version chain identity, sorted.
func (db *DB) BlockViews() []BlockView {
	var bvs []BlockView
	for _, sh := range db.shards {
		sh.mu.RLock()
		for bv := range sh.chains {
			bvs = append(bvs, bv)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(bvs, func(i, j int) bool {
		if bvs[i].Block != bvs[j].Block {
			return bvs[i].Block < bvs[j].Block
		}
		return bvs[i].View < bvs[j].View
	})
	return bvs
}

// LinkIDs returns every link ID in ascending order.
func (db *DB) LinkIDs() []LinkID {
	var ids []LinkID
	for _, st := range db.stripes {
		st.mu.RLock()
		for id := range st.links {
			ids = append(ids, id)
		}
		st.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats summarizes database size.
type Stats struct {
	OIDs           int
	Links          int
	Chains         int
	Configurations int
	Workspaces     int
}

// Stats returns current object counts.
func (db *DB) Stats() Stats {
	var s Stats
	for _, sh := range db.shards {
		sh.mu.RLock()
		s.OIDs += len(sh.oids)
		s.Chains += len(sh.chains)
		sh.mu.RUnlock()
	}
	for _, st := range db.stripes {
		st.mu.RLock()
		s.Links += len(st.links)
		st.mu.RUnlock()
	}
	db.ctl.RLock()
	s.Configurations = len(db.configs)
	s.Workspaces = len(db.workspaces)
	db.ctl.RUnlock()
	return s
}

func removeRef(refs []linkRef, id LinkID) []linkRef {
	for i, r := range refs {
		if r.id == id {
			return append(refs[:i], refs[i+1:]...)
		}
	}
	return refs
}

// replaceRef points the ref for id at the replacement link object.  Callers
// hold the owning shard's write lock.
func replaceRef(refs []linkRef, id LinkID, nl *Link) {
	for i, r := range refs {
		if r.id == id {
			refs[i].l = nl
			return
		}
	}
}

func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
}
