package replica_test

// Replicated fault injection: a primary whose disk wedges mid-stream must
// freeze its durable watermark, stop releasing quorum-gated writes, and
// never ship the unsynced suffix to a follower — and the follower must
// learn (and report over the wire) that its upstream is degraded.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/journal"
	"repro/internal/replica"
	"repro/internal/server"
)

// journalSyncFault wedges the nth fsync of a journal segment for good.
func journalSyncFault(nth int64) faultfs.Plan {
	return faultfs.Plan{Faults: []faultfs.Fault{
		{Op: faultfs.OpSync, Path: "journal-", Nth: nth, Sticky: true},
	}}
}

// TestQuorumFsyncGate is the fsyncgate regression across the full
// replication stack: writes that reached the follower quorum succeed;
// the write whose fsync fails returns an explicit error, advances no
// watermark, and releases no acknowledgement; the follower's durable
// position freezes at the last synced LSN and its state stays
// byte-identical to the primary's durable prefix.
func TestQuorumFsyncGate(t *testing.T) {
	primDir := t.TempDir()
	// Each CREATE costs two syncs (the drain's data-carrying commit, then
	// the server's empty flush); sync 5 is the third create's DATA sync,
	// so its records are written to the segment but never made durable.
	inj := faultfs.New(faultfs.OS, journalSyncFault(5))
	pw, pdb, err := journal.Open(primDir, journal.Options{SnapshotEvery: -1, Fsync: true, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pw.Abort)
	eng, err := engine.New(pdb, testBlueprint(t), engine.WithJournal(pw))
	if err != nil {
		t.Fatal(err)
	}
	psrv := server.New(eng,
		server.WithJournal(pw),
		server.WithFollowSource(replica.NewSource(pw)),
		server.WithQuorum(1, 5*time.Second))
	paddr, err := psrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { psrv.Close() })

	fol, err := replica.Start(t.TempDir(), paddr, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Abort)

	pc, err := server.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	// Quorum-gated writes succeed only once the follower's acknowledged
	// watermark covers them, so every OK below proves the ack path.
	var wm int64
	var failErr error
	for i := 0; i < 10; i++ {
		if _, err := pc.Create(fmt.Sprintf("BLK%d", i), "HDL_model"); err != nil {
			failErr = err
			break
		}
		wm = pw.CommittedLSN()
	}
	if failErr == nil {
		t.Fatal("sync fault never fired across 10 writes")
	}
	if !strings.Contains(failErr.Error(), "journal") {
		t.Fatalf("failed-fsync write error does not name the journal: %v", failErr)
	}
	if wm == 0 {
		t.Fatal("no write succeeded before the fault; cannot test the gate")
	}

	// The failed fsync froze the durable watermark: the failing write's
	// records reached the segment (LastLSN moved) but must never be
	// covered by the watermark.
	if got := pw.CommittedLSN(); got != wm {
		t.Fatalf("watermark moved after a failed fsync: %d -> %d", wm, got)
	}
	if last := pw.LastLSN(); last <= wm {
		t.Fatalf("LastLSN %d, want > durable %d (the fault was supposed to hit a data-carrying sync)", last, wm)
	}
	if healthy, reason := pw.Health(); healthy || !strings.Contains(reason, "fsync") {
		t.Fatalf("journal health = (%v, %q), want degraded with an fsync reason", healthy, reason)
	}
	// …and later writes are refused up front rather than parked on a
	// quorum that can never be reached.
	start := time.Now()
	if _, err := pc.Create("LATE", "HDL_model"); err == nil {
		t.Fatal("degraded primary accepted a quorum-gated write")
	} else if !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("post-fault refusal = %v, want the degraded contract", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("degraded refusal parked on the quorum gate instead of failing fast")
	}

	// The follower converges on the durable prefix and freezes there: the
	// unsynced suffix was never acked, so it must never be streamed.
	if at, err := fol.WaitApplied(wm, 10*time.Second); err != nil {
		t.Fatalf("follower stuck at %d waiting for durable lsn %d: %v", at, wm, err)
	}
	time.Sleep(200 * time.Millisecond)
	if got := fol.AppliedLSN(); got != wm {
		t.Fatalf("follower applied lsn %d, want frozen at durable %d", got, wm)
	}
	if got := fol.Watermark(); got > wm {
		t.Fatalf("follower watermark %d ran past the primary's durable %d", got, wm)
	}

	// Byte-identical to the primary's durable prefix (not its in-memory
	// state, which may hold the never-acked suffix).
	durable, lsn, err := journal.ReplayUpTo(primDir, 0, wm)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != wm {
		t.Fatalf("durable replay reached %d, want %d", lsn, wm)
	}
	if !bytes.Equal(saveBytes(t, durable), saveBytes(t, fol.DB())) {
		t.Fatal("follower state differs from the primary's durable prefix")
	}
}

// TestUpstreamHealthPropagation: when the primary's journal degrades, the
// health frame rides the FOLLOW stream, the follower's UpstreamHealth
// flips, and the follower's own ROLE reports it over the wire — so a
// failover driver interrogating replicas sees the primary's disk fault
// from anywhere in the cluster.
func TestUpstreamHealthPropagation(t *testing.T) {
	inj := faultfs.New(faultfs.OS, journalSyncFault(4))
	c := newCluster(t, 0, journal.Options{SnapshotEvery: -1, Fsync: true, FS: inj})
	c.startFollower()

	pc := c.dial(c.paddr)
	defer pc.Close()
	var failErr error
	for i := 0; i < 10; i++ {
		if _, err := pc.Create(fmt.Sprintf("BLK%d", i), "HDL_model"); err != nil {
			failErr = err
			break
		}
	}
	if failErr == nil {
		t.Fatal("sync fault never fired across 10 writes")
	}

	// The follower learns the upstream reason through the stream.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok, reason := c.fol.UpstreamHealth()
		if !ok {
			if !strings.Contains(reason, "fsync") {
				t.Fatalf("upstream reason = %q, want the fsync fault", reason)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never learned its upstream degraded")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And reports it on its own ROLE line.
	fc := c.dial(c.faddr)
	defer fc.Close()
	ri, err := fc.Role()
	if err != nil {
		t.Fatal(err)
	}
	if ri.Health != "degraded" || !strings.Contains(ri.Reason, "upstream") {
		t.Fatalf("follower ROLE = %+v, want health=degraded with an upstream reason", ri)
	}

	// Reads keep serving on both nodes throughout.
	if _, err := pc.Report(); err != nil {
		t.Fatalf("degraded primary stopped serving reads: %v", err)
	}
	if _, err := fc.Report(); err != nil {
		t.Fatalf("follower of a degraded primary stopped serving reads: %v", err)
	}
}
