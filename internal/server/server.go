// Package server implements the DAMOCLES project server of Figure 1: a TCP
// daemon owning the meta-database and the BluePrint engine.  Wrapper
// programs connect, post design events, create OIDs and links, and query
// project state; the engine processes events sequentially, first-in
// first-out.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/state"
	"repro/internal/viz"
	"repro/internal/wire"
)

// Server is a running project server.
type Server struct {
	eng *engine.Engine

	// journal/follow/readOnly define the server's replication role.  They
	// are mu-guarded (not construction-constant) because PROMOTE flips all
	// three at once on a live server: a read-only follower becomes a
	// journaled primary without restarting its listener.
	mu       sync.Mutex
	journal  *journal.Writer
	follow   FollowSource
	readOnly ReadFollower
	promote  func() (Promotion, error)
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup

	// promoteMu serializes PROMOTE requests end to end, so a second
	// request observes the flipped role instead of racing the hook.
	promoteMu sync.Mutex

	quorum *quorum

	limits   Limits
	inflight chan struct{} // admission semaphore; nil = unlimited
	logf     func(format string, args ...any)

	// testHookHandle, when set by an in-package test, runs at the top of
	// every handled request — the seam overload tests use to park a
	// request inside its in-flight slot.
	testHookHandle func(wire.Request)

	async    bool
	wake     chan struct{}
	quit     chan struct{}
	drainErr error

	counters Counters
}

// Counters are the server's shed/refusal tallies, exported through
// STATS so a load generator's client-side error accounting can be
// reconciled exactly against what the server says it refused.  All
// fields are atomics; read them via Stats' snapshot or CountersSnapshot.
type Counters struct {
	// ConnsShed counts connections refused at accept time by the
	// MaxConns gate.
	ConnsShed atomic.Int64

	// InflightShed counts requests refused by the MaxInflight gate.
	InflightShed atomic.Int64

	// ReadOnlyRefused counts mutating verbs refused because this node is
	// a read-only follower.
	ReadOnlyRefused atomic.Int64

	// DegradedRefused counts writes refused by the journal-io degraded
	// contract.
	DegradedRefused atomic.Int64

	// BatchOversize counts BATCH requests refused for exceeding the
	// item bound.
	BatchOversize atomic.Int64

	// Panics counts connection handlers lost to a recovered panic.
	Panics atomic.Int64
}

// CountersSnapshot reads the refusal counters as plain values.
func (s *Server) CountersSnapshot() map[string]int64 {
	return map[string]int64{
		"conns_shed":       s.counters.ConnsShed.Load(),
		"inflight_shed":    s.counters.InflightShed.Load(),
		"readonly_refused": s.counters.ReadOnlyRefused.Load(),
		"degraded_refused": s.counters.DegradedRefused.Load(),
		"batch_oversize":   s.counters.BatchOversize.Load(),
		"panics":           s.counters.Panics.Load(),
	}
}

// Limits bounds the server's exposure to slow, stuck or excessive
// clients.  The zero value means unlimited connections and in-flight
// requests, no deadlines, and the default BATCH bound — the historical
// behaviour, minus unbounded BATCH.
type Limits struct {
	// MaxConns caps concurrent connections; past it, new connections are
	// shed with an explicit "overloaded" error line, never silently
	// dropped.  0 means unlimited.
	MaxConns int

	// MaxInflight caps concurrently-executing requests across all
	// connections (FOLLOW streams are exempt — they are subscriptions,
	// bounded by MaxConns).  Excess requests are refused with
	// "overloaded", not queued: the client knows immediately and can back
	// off.  0 means unlimited.
	MaxInflight int

	// MaxBatchItems caps items in one BATCH request; 0 means
	// DefaultMaxBatchItems.  A bound always applies: one request must not
	// expand into unbounded queued work.
	MaxBatchItems int

	// IdleTimeout closes a connection whose next request does not arrive
	// in time.  It does not apply to FOLLOW connections, which are
	// legitimately silent between commits.  0 means no deadline.
	IdleTimeout time.Duration

	// WriteTimeout bounds each write to the client, so a stalled consumer
	// of a large REPORT or a follow stream kills its own connection
	// instead of parking a handler goroutine forever.  0 means no
	// deadline.
	WriteTimeout time.Duration
}

// DefaultMaxBatchItems bounds BATCH when Limits leaves it unset.
const DefaultMaxBatchItems = 4096

// WithLimits applies connection, admission and deadline bounds.
func WithLimits(l Limits) Option { return func(s *Server) { s.limits = l } }

// WithLogger routes the server's diagnostics (handler panics, accept
// backoff) through logf; the default is the standard library's
// log.Printf.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) {
		if logf != nil {
			s.logf = logf
		}
	}
}

// FollowSource produces the primary-side replication stream for one
// follower: ServeFollow emits follow-stream body lines (the wire package's
// snapshot/record/watermark framing, without the "|" prefix) through send,
// in order, until stop closes or send fails.  fromTerm is the election
// term of the follower's history at its resume position (0 when the
// follower predates terms); the source refuses positions from a divergent
// lineage.  Implemented by replica.Source over a journal tail.
type FollowSource interface {
	ServeFollow(from, fromTerm int64, stop <-chan struct{}, send func(line string) error) error
}

// ReadFollower is the follower-side applier a read-only server consults
// for its applied position, its replication standing (ROLE), and for
// read-your-LSN queries (implemented by replica.Follower).
type ReadFollower interface {
	AppliedLSN() int64
	Watermark() int64
	Term() int64
	WaitApplied(lsn int64, timeout time.Duration) (int64, error)
}

// Promotion is what a promotion hook hands back to the server: the
// journal that now accepts local writes (the follower's own, flipped to
// primary mode), the follow source that serves it onward, and the new
// term.  The hook — built by the daemon, which owns the replication
// plumbing the server cannot import — must have already stopped the
// apply loop, written the term-bump record, and attached the journal to
// the engine before returning.
type Promotion struct {
	Journal *journal.Writer
	Source  FollowSource
	Term    int64
	LSN     int64
}

// Option configures a Server.
type Option func(*Server)

// WithAsyncDrain decouples event intake from processing, matching Figure 1
// literally: POST enqueues and returns immediately ("queued"), and a
// dedicated drainer goroutine processes the queue.  Clients observe
// quiescence with the SYNC verb.  Without this option every mutating
// request drains synchronously before responding.
func WithAsyncDrain() Option { return func(s *Server) { s.async = true } }

// WithJournal tells the server which journal persists its database, so
// mutations that do not ride a synchronous drain commit it before their
// response is written — LINK, SNAPSHOT, CREATE (whose OID is created
// outside the drain), and SYNC (the async mode's settlement point) — the
// same on-disk-before-ack guarantee the engine provides for event
// processing.  The engine should carry the same journal via
// engine.WithJournal.
func WithJournal(j *journal.Writer) Option { return func(s *Server) { s.journal = j } }

// WithFollowSource makes the server a replication primary: the FOLLOW
// verb is served from src, turning a connection into a live record stream
// (snapshot bootstrap for cold followers, then committed records as they
// land).
func WithFollowSource(src FollowSource) Option { return func(s *Server) { s.follow = src } }

// WithReadOnly puts the server in follower read mode: every mutating verb
// (POST, BATCH, CREATE, LINK, SNAPSHOT) is refused — the database is
// mirrored from a primary and local writes would fork it — while the read
// verbs (REPORT, GAP, STATE, QUERY-style lookups) serve from the
// replicated state.  REPORT/GAP accept an optional minimum LSN that waits
// on f until the replica has applied at least that position, giving
// clients read-your-writes across the primary/follower boundary.
func WithReadOnly(f ReadFollower) Option { return func(s *Server) { s.readOnly = f } }

// WithPromote arms the PROMOTE verb on a read-only follower server: the
// hook performs the actual role flip (stop replicating, bump the term,
// re-wire the engine) and the server then atomically swaps its own role
// state to primary.  Without it PROMOTE is refused.
func WithPromote(hook func() (Promotion, error)) Option {
	return func(s *Server) { s.promote = hook }
}

// WithQuorum holds each write's acknowledgement until n follower
// watermarks cover its LSN, as reported by ACK lines on their FOLLOW
// connections.  A write that cannot gather its quorum within timeout
// (default 5s) degrades to an explicit "quorum-timeout" error — the write
// is committed locally and will replicate when followers return; it is
// never silently lost, and never silently under-replicated.
func WithQuorum(n int, timeout time.Duration) Option {
	return func(s *Server) {
		if n <= 0 {
			return
		}
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		s.quorum = newQuorum(n, timeout)
	}
}

// New creates a server around an engine.
func New(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{
		eng:   eng,
		conns: make(map[net.Conn]bool),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		logf:  log.Printf,
	}
	for _, o := range opts {
		o(s)
	}
	if s.limits.MaxInflight > 0 {
		s.inflight = make(chan struct{}, s.limits.MaxInflight)
	}
	if s.async {
		s.wg.Add(1)
		go s.drainLoop()
	}
	return s
}

// admit reserves an in-flight execution slot, returning its release and
// whether the request may run.  Saturation sheds immediately rather than
// queueing: an explicit "overloaded" travels back to the client while the
// server's actual work stays bounded.
func (s *Server) admit() (release func(), ok bool) {
	if s.inflight == nil {
		return func() {}, true
	}
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, true
	default:
		return nil, false
	}
}

// overloadedResp is the explicit shed response of the admission gates.
func overloadedResp(what string) wire.Response {
	return wire.Response{OK: false, Detail: "overloaded: " + what}
}

// drainLoop is the background event processor of async mode.
func (s *Server) drainLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.wake:
			if err := s.eng.Drain(); err != nil {
				s.mu.Lock()
				s.drainErr = err
				s.mu.Unlock()
			}
		}
	}
}

// kick requests a drain: synchronously in the default mode, via the
// drainer goroutine in async mode.
func (s *Server) kick() error {
	if !s.async {
		return s.eng.Drain()
	}
	select {
	case s.wake <- struct{}{}:
	default: // a wake-up is already pending
	}
	return nil
}

// Engine exposes the underlying engine, e.g. for in-process inspection in
// tests and tools.
func (s *Server) Engine() *engine.Engine { return s.eng }

// getJournal/getFollow/getReadOnly read the mu-guarded role state —
// every post-construction reader must come through these, because
// PROMOTE swaps all three on a live server.
func (s *Server) getJournal() *journal.Writer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}

func (s *Server) getFollow() FollowSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.follow
}

func (s *Server) getReadOnly() ReadFollower {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readOnly
}

// commitJournal flushes the journal, if one is attached — called by
// mutating verbs whose changes do not pass through a drain.  A failure
// here is the journal-io degraded contract speaking: the prefix tells the
// client its write was refused by the disk, not the protocol.
func (s *Server) commitJournal() error {
	j := s.getJournal()
	if j == nil {
		return nil
	}
	if err := j.Commit(); err != nil {
		return fmt.Errorf("journal-io: %v", err)
	}
	return nil
}

// ackGate blocks a just-committed write until the configured quorum of
// follower watermarks covers it; a no-op without WithQuorum.  The commit
// has already happened: a timeout here means under-replication, not loss,
// and the error says so explicitly instead of stalling forever or lying
// with an OK.
func (s *Server) ackGate() error {
	q := s.quorum
	if q == nil {
		return nil
	}
	j := s.getJournal()
	if j == nil {
		return nil
	}
	return q.wait(j.LastLSN(), s.quit)
}

// Listen starts accepting connections on addr ("host:port"; port 0 picks a
// free port) and returns the bound address.  Serving happens on background
// goroutines; call Close to stop.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("server: already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	const backoffMin, backoffMax = 5 * time.Millisecond, time.Second
	backoff := backoffMin
	for {
		conn, err := ln.Accept()
		if err != nil {
			// A transient accept failure (EMFILE under connection pressure
			// is the classic) must not tight-loop the CPU or, worse, kill
			// the accept loop and silently stop the server.  Back off with
			// jitter and retry; anything else means the listener is gone.
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				d := backoff + rand.N(backoff)
				s.logf("server: accept: %v (retrying in %v)", err, d)
				select {
				case <-s.quit:
					return
				case <-time.After(d):
				}
				if backoff < backoffMax {
					backoff *= 2
				}
				continue
			}
			return // listener closed
		}
		backoff = backoffMin
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.limits.MaxConns > 0 && len(s.conns) >= s.limits.MaxConns {
			// Shed, loudly: the one line tells the client this is load, not
			// a network failure, so its retry policy can be deliberate.
			s.mu.Unlock()
			s.counters.ConnsShed.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				fmt.Fprintf(conn, "%s\n", overloadedResp(fmt.Sprintf("connection limit %d reached", s.limits.MaxConns)).Encode())
				conn.Close()
			}()
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener and all connections and waits for handlers to
// finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	close(s.quit)
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	// Handlers have retired; park any straggling records on disk.  The
	// journal itself stays open — its owner (the daemon) closes it.
	return s.commitJournal()
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// timeoutConn applies the configured idle/write deadlines around every
// Read and Write, so one stalled peer kills its own connection instead of
// parking a handler goroutine (and its buffers) forever.
type timeoutConn struct {
	net.Conn
	idle, write time.Duration
	noIdle      atomic.Bool
}

func (c *timeoutConn) Read(p []byte) (int, error) {
	if c.idle > 0 && !c.noIdle.Load() {
		c.Conn.SetReadDeadline(time.Now().Add(c.idle))
	}
	return c.Conn.Read(p)
}

func (c *timeoutConn) Write(p []byte) (int, error) {
	if c.write > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.write))
	}
	return c.Conn.Write(p)
}

// disableIdle lifts the idle read deadline for connection modes that are
// legitimately silent for long stretches — the FOLLOW ack reader, whose
// follower only speaks when records flow.
func (c *timeoutConn) disableIdle() {
	c.noIdle.Store(true)
	c.Conn.SetReadDeadline(time.Time{})
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.dropConn(conn)
	// A panicking handler must cost exactly its own connection, never the
	// node: the panic is logged with its stack and the connection closes,
	// while every other client — and the journal — carries on.
	defer func() {
		if p := recover(); p != nil {
			s.counters.Panics.Add(1)
			s.logf("server: panic in connection handler: %v\n%s", p, debug.Stack())
		}
	}()
	tc := &timeoutConn{Conn: conn, idle: s.limits.IdleTimeout, write: s.limits.WriteTimeout}
	r := bufio.NewReaderSize(tc, 64*1024)
	w := bufio.NewWriter(tc)
	for {
		line, err := readProtocolLine(r)
		if err != nil {
			// Transport end, idle deadline, oversized line, or a final
			// fragment torn off mid-send.  A fragment is never executed: a
			// truncated request can parse as a valid, different request,
			// and on a journaled primary the wrong mutation would be
			// committed and replicated.
			return
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		req, err := wire.ParseRequest(line)
		var resp wire.Response
		var quit bool
		if err != nil {
			resp = wire.Response{OK: false, Detail: err.Error()}
		} else {
			switch req.Verb {
			case wire.VerbFollow:
				// FOLLOW dedicates the connection to the record stream;
				// when it returns, the conversation is over either way.
				// The stream is a subscription, not a request: it takes no
				// in-flight slot (MaxConns bounds it) and may sit idle
				// between commits without tripping the idle deadline.
				tc.disableIdle()
				s.serveFollow(r, w, req)
				return
			case wire.VerbReport, wire.VerbGap:
				// Streamed: rows are flushed to the socket as they are
				// evaluated instead of buffering the whole body.
				release, admitted := s.admit()
				if !admitted {
					s.counters.InflightShed.Add(1)
					resp = overloadedResp("too many in-flight requests")
					break
				}
				alive := s.streamReport(w, req)
				release()
				if !alive {
					return
				}
				continue
			default:
				release, admitted := s.admit()
				if !admitted {
					s.counters.InflightShed.Add(1)
					resp = overloadedResp("too many in-flight requests")
					break
				}
				resp, quit = s.handle(req)
				release()
			}
		}
		if _, err := w.WriteString(resp.Encode() + "\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// writeFlush writes one already-terminated chunk and pushes it to the
// socket; false means the connection is gone.
func writeFlush(w *bufio.Writer, chunk string) bool {
	if _, err := w.WriteString(chunk); err != nil {
		return false
	}
	return w.Flush() == nil
}

// reportGate validates the optional minimum-LSN argument of REPORT/GAP
// and, on a follower, blocks until the replica has applied that position.
// It returns a pinned MVCC view to evaluate the rows against — at exactly
// the requested LSN when the version history still reaches back that far,
// at the current stable epoch otherwise (still "at least" the requested
// position, the read-your-writes contract) — or an error response to send
// instead.  A nil view with a nil response means the database has no MVCC
// (an unjournaled server): the caller streams from the live database.
// The caller must Close a returned view once the rows are written.
func (s *Server) reportGate(req wire.Request) (*meta.View, *wire.Response) {
	db := s.eng.DB()
	errResp := func(format string, a ...any) *wire.Response {
		return &wire.Response{OK: false, Detail: fmt.Sprintf(format, a...)}
	}
	if len(req.Args) == 0 {
		if db.MVCCEnabled() {
			return db.ReadView(), nil
		}
		return nil, nil
	}
	if len(req.Args) > 1 {
		return nil, errResp("%s wants at most one <min-lsn> argument", req.Verb)
	}
	lsn, err := strconv.ParseInt(req.Args[0], 10, 64)
	if err != nil || lsn < 0 {
		return nil, errResp("%s: bad min-lsn %q", req.Verb, req.Args[0])
	}
	ro, j := s.getReadOnly(), s.getJournal()
	switch {
	case ro != nil:
		if at, err := ro.WaitApplied(lsn, 10*time.Second); err != nil {
			return nil, errResp("replica at lsn %d has not reached %d: %v", at, lsn, err)
		}
	case j != nil:
		if at := j.LastLSN(); at < lsn {
			return nil, errResp("journal at lsn %d has not reached %d", at, lsn)
		}
	default:
		return nil, errResp("%s <min-lsn> needs a journal or replica", req.Verb)
	}
	if !db.MVCCEnabled() {
		return nil, nil
	}
	// The journal (or replica) has reached lsn, so a view pinned exactly
	// there answers "the state at my write", not "whatever is current once
	// we caught up".  History reclaimed below the horizon falls back to
	// the current stable view, which is newer than lsn and therefore still
	// satisfies the minimum.
	v, err := db.ReadViewAt(lsn)
	if err != nil {
		return db.ReadView(), nil
	}
	return v, nil
}

// handleQuery serves QUERY <lsn> <reach|deps|equiv|resolve> <args...>:
// time-travel graph queries pinned at an LSN (0 = the current state).
// Primaries and read-only followers serve it alike — the LSN gate is the
// REPORT/GAP one (a follower blocks until it has applied the position), so
// the body at a given LSN is byte-identical on every node that has reached
// it.  reach/deps take an optional follow spec: "use" (hierarchy links),
// "all" (every link), or "type:t1,t2,..." (use links plus derive links of
// the named types); reach defaults to use, deps to all, matching the DB
// methods.  With MVCC on, the walk runs on the pinned view through the
// versioned reachability index and takes zero shard locks.
func (s *Server) handleQuery(req wire.Request) wire.Response {
	fail := func(format string, a ...any) wire.Response {
		return wire.Response{OK: false, Detail: fmt.Sprintf(format, a...)}
	}
	if len(req.Args) < 2 {
		return fail("QUERY wants <lsn> <reach|deps|equiv|resolve> <args...>")
	}
	lsn, err := strconv.ParseInt(req.Args[0], 10, 64)
	if err != nil || lsn < 0 {
		return fail("QUERY: bad lsn %q", req.Args[0])
	}
	gateReq := wire.Request{Verb: req.Verb}
	if lsn > 0 {
		gateReq.Args = []string{req.Args[0]}
	}
	v, resp := s.reportGate(gateReq)
	if resp != nil {
		return *resp
	}
	defer v.Close() // nil-safe
	db := s.eng.DB()
	kind, args := req.Args[1], req.Args[2:]
	switch kind {
	case "reach", "deps":
		if len(args) < 1 || len(args) > 2 {
			return fail("QUERY %s wants <oid> [use|all|type:t1,t2,...]", kind)
		}
		root, err := meta.ParseKey(args[0])
		if err != nil {
			return fail("%v", err)
		}
		var follow meta.FollowFunc
		if len(args) == 2 {
			if follow, err = parseFollowSpec(args[1]); err != nil {
				return fail("%v", err)
			}
		}
		var exists bool
		var keys []meta.Key
		if v != nil {
			exists = v.HasOID(root)
			if kind == "reach" {
				keys = v.Reachable(root, follow)
			} else {
				keys = v.Dependents(root, follow)
			}
		} else {
			exists = db.HasOID(root)
			if kind == "reach" {
				keys = db.Reachable(root, follow)
			} else {
				keys = db.Dependents(root, follow)
			}
		}
		if !exists {
			return fail("oid %v: not found", root)
		}
		return keysResponse(keys)
	case "equiv":
		if len(args) != 1 {
			return fail("QUERY equiv wants <oid>")
		}
		k, err := meta.ParseKey(args[0])
		if err != nil {
			return fail("%v", err)
		}
		var exists bool
		var keys []meta.Key
		if v != nil {
			exists = v.HasOID(k)
			keys = v.Equivalents(k)
		} else {
			exists = db.HasOID(k)
			keys = db.Equivalents(k)
		}
		if !exists {
			return fail("oid %v: not found", k)
		}
		return keysResponse(keys)
	case "resolve":
		if len(args) != 1 {
			return fail("QUERY resolve wants <configuration>")
		}
		var r *meta.ResolvedConfiguration
		if v != nil {
			r, err = v.Resolve(args[0])
		} else {
			r, err = db.Resolve(args[0])
		}
		if err != nil {
			return fail("%v", err)
		}
		body := []string{fmt.Sprintf("config %s %d", wire.Quote(r.Config.Name), r.Config.Seq)}
		for _, o := range r.OIDs {
			body = append(body, "oid "+o.Key.String())
		}
		for _, l := range r.Links {
			body = append(body, fmt.Sprintf("link %d %s %s %s", l.ID, l.Class, l.From, l.To))
		}
		for _, k := range r.MissingOIDs {
			body = append(body, "missing-oid "+k.String())
		}
		for _, id := range r.MissingLinks {
			body = append(body, fmt.Sprintf("missing-link %d", id))
		}
		return wire.Response{OK: true,
			Detail: fmt.Sprintf("%d oids %d links %d missing",
				len(r.OIDs), len(r.Links), len(r.MissingOIDs)+len(r.MissingLinks)),
			Body: body}
	default:
		return fail("QUERY: unknown kind %q (want reach, deps, equiv or resolve)", kind)
	}
}

func keysResponse(keys []meta.Key) wire.Response {
	body := make([]string, len(keys))
	for i, k := range keys {
		body[i] = k.String()
	}
	return wire.Response{OK: true, Detail: fmt.Sprintf("%d keys", len(keys)), Body: body}
}

// parseFollowSpec maps the wire follow spec of QUERY reach/deps onto a
// FollowFunc.
func parseFollowSpec(spec string) (meta.FollowFunc, error) {
	switch {
	case spec == "use":
		return meta.FollowUseLinks, nil
	case spec == "all":
		return meta.FollowAllLinks, nil
	case strings.HasPrefix(spec, "type:"):
		types := strings.Split(strings.TrimPrefix(spec, "type:"), ",")
		return meta.FollowType(types...), nil
	}
	return nil, fmt.Errorf("bad follow spec %q (want use, all or type:t1,t2,...)", spec)
}

// streamReport serves REPORT/GAP over a live connection, writing and
// flushing each "|" body row as it is evaluated — a report over a large
// database starts arriving immediately and never materializes as one
// buffer.  Rows keep the stable key-sorted order of the buffered form.
// false means the connection died mid-stream.
func (s *Server) streamReport(w *bufio.Writer, req wire.Request) bool {
	v, resp := s.reportGate(req)
	if resp != nil {
		return writeFlush(w, resp.Encode()+"\n")
	}
	defer v.Close() // nil-safe
	if !writeFlush(w, "OK+ streaming\n") {
		return false
	}
	alive := true
	row := func(st *state.OIDState) bool {
		if req.Verb == wire.VerbGap && st.Ready {
			return true
		}
		alive = writeFlush(w, "|"+reportRow(st)+"\n")
		return alive
	}
	if v != nil {
		// Pause-free path: rows evaluate against the pinned view with no
		// database locks; a slow reader stalls nobody.
		state.StreamSortedView(v, s.eng.Blueprint(), row)
	} else {
		state.StreamSorted(s.eng.DB(), s.eng.Blueprint(), row)
	}
	if !alive {
		return false
	}
	return writeFlush(w, ".\n")
}

// reportRow formats one REPORT/GAP body line.
func reportRow(st *state.OIDState) string {
	line := fmt.Sprintf("%s ready=%v", st.Key, st.Ready)
	if len(st.Reasons) > 0 {
		line += " " + wire.Quote(strings.Join(st.Reasons, "; "))
	}
	return line
}

// serveFollow turns the connection into a replication stream: an OK+
// header, then one flushed body line per snapshot/record/watermark frame
// until the follower hangs up or the server shuts down.  The request
// reader keeps draining in the background purely as a hangup detector —
// a parked stream on a write-idle primary would otherwise hold its
// goroutine, connection and tail open until the next commit happened to
// wake it into a failing send.
func (s *Server) serveFollow(r *bufio.Reader, w *bufio.Writer, req wire.Request) {
	fail := func(format string, a ...any) {
		writeFlush(w, wire.Response{OK: false, Detail: fmt.Sprintf(format, a...)}.Encode()+"\n")
	}
	follow := s.getFollow()
	if follow == nil {
		fail("FOLLOW: this server is not a replication primary")
		return
	}
	if len(req.Args) < 1 || len(req.Args) > 2 {
		fail("FOLLOW wants <last-applied-lsn> [<term>]")
		return
	}
	from, err := strconv.ParseInt(req.Args[0], 10, 64)
	if err != nil || from < 0 {
		fail("FOLLOW: bad lsn %q", req.Args[0])
		return
	}
	var fromTerm int64
	if len(req.Args) == 2 {
		fromTerm, err = strconv.ParseInt(req.Args[1], 10, 64)
		if err != nil || fromTerm < 1 {
			fail("FOLLOW: bad term %q", req.Args[1])
			return
		}
	}
	if !writeFlush(w, fmt.Sprintf("OK+ following after lsn %d\n", from)) {
		return
	}
	// stop closes when the server shuts down OR the follower hangs up.
	// The hangup side comes from draining the request scanner: the only
	// upstream traffic a FOLLOW connection carries is ACK progress lines,
	// so the reader parses those into the quorum registry and anything
	// else ends the conversation.  Both watcher goroutines retire when
	// this handler returns (serveConn closes the connection, failing the
	// read).
	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }
	defer closeStop()
	var connID int64
	if s.quorum != nil {
		connID = s.quorum.register()
		defer s.quorum.unregister(connID)
	}
	go func() {
		defer closeStop()
		for {
			line, err := readProtocolLine(r)
			if err != nil {
				return // hangup (or a torn/oversized line: same outcome)
			}
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == wire.AckPrefix {
				if lsn, err := strconv.ParseInt(fields[1], 10, 64); err == nil && lsn >= 0 {
					if s.quorum != nil {
						s.quorum.ack(connID, lsn)
					}
					continue
				}
			}
			return // not an ACK: the peer is confused, end the stream
		}
	}()
	go func() {
		select {
		case <-s.quit:
			closeStop()
		case <-stop:
		}
	}()
	connGone := errors.New("follower connection gone")
	err = follow.ServeFollow(from, fromTerm, stop, func(line string) error {
		if !writeFlush(w, "|"+line+"\n") {
			return connGone
		}
		return nil
	})
	if err != nil && !errors.Is(err, connGone) {
		// A terminal source failure (tail corruption, a follower position
		// ahead of this primary's history) must reach the follower as an
		// error, not masquerade as a clean shutdown it would silently
		// retry forever.
		writeFlush(w, "|"+wire.FollowFrameError+" "+wire.Quote(err.Error())+"\n")
	}
	if err == nil || !errors.Is(err, connGone) {
		// Deliberate end: close the body politely so the follower sees
		// end-of-stream rather than a torn line.
		writeFlush(w, ".\n")
	}
}

// Handle processes one request against the engine and database.  It is
// exported for in-process use (the flow simulator drives the same code path
// without TCP).
func (s *Server) Handle(req wire.Request) wire.Response {
	resp, _ := s.handle(req)
	return resp
}

func (s *Server) handle(req wire.Request) (wire.Response, bool) {
	if s.testHookHandle != nil {
		s.testHookHandle(req)
	}
	fail := func(format string, args ...any) (wire.Response, bool) {
		return wire.Response{OK: false, Detail: fmt.Sprintf(format, args...)}, false
	}
	ok := func(format string, args ...any) (wire.Response, bool) {
		return wire.Response{OK: true, Detail: fmt.Sprintf(format, args...)}, false
	}
	switch req.Verb {
	case wire.VerbPost, wire.VerbBatch, wire.VerbCreate, wire.VerbLink, wire.VerbSnapshot, wire.VerbBPSwap:
		if ro := s.getReadOnly(); ro != nil {
			s.counters.ReadOnlyRefused.Add(1)
			return fail("read-only follower: %s refused (write to the primary)", req.Verb)
		}
		// The degraded-mode contract: once the journal has hit a sticky
		// I/O failure, every write is refused up front with the reason —
		// never accepted-then-lost, never silently un-acked — while reads
		// keep serving below.
		if j := s.getJournal(); j != nil {
			if healthy, reason := j.Health(); !healthy {
				s.counters.DegradedRefused.Add(1)
				return fail("journal-io: %s (node degraded: writes refused, reads still served)", reason)
			}
		}
	}
	switch req.Verb {
	case wire.VerbPing:
		return ok("pong")

	case wire.VerbLSN:
		switch ro, j := s.getReadOnly(), s.getJournal(); {
		case ro != nil:
			return ok("lsn %d", ro.AppliedLSN())
		case j != nil:
			return ok("lsn %d", j.LastLSN())
		default:
			return ok("lsn 0")
		}

	case wire.VerbRole:
		// One line a failover driver can act on: who am I, which election
		// term, how far has my history reached, and is my disk (or my
		// upstream's) still accepting writes.
		switch ro, j := s.getReadOnly(), s.getJournal(); {
		case ro != nil:
			return ok("role=follower term=%d applied=%d watermark=%d%s%s",
				ro.Term(), ro.AppliedLSN(), ro.Watermark(), followerHealthFields(ro),
				followerStalenessField(ro))
		case j != nil:
			health, reason := j.Health()
			return ok("role=primary term=%d applied=%d watermark=%d%s",
				j.Term(), j.LastLSN(), j.CommittedLSN(), healthFields(health, reason))
		default:
			return ok("role=primary term=1 applied=0 watermark=0 health=ok")
		}

	case wire.VerbPromote:
		// promoteMu serializes promotions end to end: a second PROMOTE
		// waits out the first and then sees the flipped role, instead of
		// racing the hook into a double term bump.
		s.promoteMu.Lock()
		defer s.promoteMu.Unlock()
		s.mu.Lock()
		isFollower, hook := s.readOnly != nil, s.promote
		s.mu.Unlock()
		if !isFollower {
			return fail("PROMOTE: already a primary")
		}
		if hook == nil {
			return fail("PROMOTE: this follower has no promotion hook")
		}
		p, err := hook()
		if err != nil {
			return fail("PROMOTE: %v", err)
		}
		s.mu.Lock()
		s.journal = p.Journal
		s.follow = p.Source
		s.readOnly = nil
		s.promote = nil
		s.mu.Unlock()
		return ok("promoted term %d lsn %d", p.Term, p.LSN)

	case wire.VerbFollow:
		return fail("FOLLOW needs a network connection (it streams indefinitely)")

	case wire.VerbSync:
		s.eng.WaitIdle()
		s.mu.Lock()
		err := s.drainErr
		s.drainErr = nil
		s.mu.Unlock()
		if err != nil {
			return fail("%v", err)
		}
		// SYNC is the async mode's settlement point: quiescence may be
		// observed a moment before the drainer's own commit runs, so
		// commit here too — "idle" then always means "settled and on
		// disk".
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		if err := s.ackGate(); err != nil {
			return fail("%v", err)
		}
		return ok("idle")

	case wire.VerbQuit:
		return wire.Response{OK: true, Detail: "bye"}, true

	case wire.VerbPost:
		if len(req.Args) < 3 {
			return fail("POST wants <event> <up|down> <oid> [args...]")
		}
		dir, err := bpl.ParseDirection(req.Args[1])
		if err != nil {
			return fail("%v", err)
		}
		target, err := meta.ParseKey(req.Args[2])
		if err != nil {
			return fail("%v", err)
		}
		ev := engine.Event{Name: req.Args[0], Dir: dir, Target: target, Args: req.Args[3:], User: req.User}
		if err := s.eng.Post(ev); err != nil {
			return fail("%v", err)
		}
		if err := s.kick(); err != nil {
			return fail("%v", err)
		}
		if s.async {
			// "queued" is an intake acknowledgement, not a durability (or
			// replication) promise; the quorum gate applies at SYNC, the
			// async mode's settlement point.
			return ok("queued %s", ev.Name)
		}
		// The synchronous drain committed the journal; now the write must
		// also reach the configured follower quorum before it is
		// acknowledged as posted.
		if err := s.ackGate(); err != nil {
			return fail("%v", err)
		}
		return ok("posted %s", ev.Name)

	case wire.VerbBatch:
		// Many events, one round-trip, one drain — the batched form of
		// POST a hierarchy check-in uses.  Items are validated and posted
		// in order; a bad item is reported in the body without blocking
		// the rest.  The drain kicks once after every accepted item is
		// queued.
		if len(req.Args) == 0 {
			return fail("BATCH wants at least one <event dir oid [args...]> item")
		}
		maxItems := s.limits.MaxBatchItems
		if maxItems <= 0 {
			maxItems = DefaultMaxBatchItems
		}
		if len(req.Args) > maxItems {
			// Bounded intake: one request must not expand into unbounded
			// queued work.  Nothing was posted — the client can split.
			s.counters.BatchOversize.Add(1)
			return fail("BATCH: %d items exceeds the %d-item bound (split the batch)", len(req.Args), maxItems)
		}
		body := make([]string, 0, len(req.Args))
		posted := 0
		for i, raw := range req.Args {
			it, err := wire.ParseBatchItem(raw)
			if err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			dir, err := bpl.ParseDirection(it.Dir)
			if err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			target, err := meta.ParseKey(it.OID)
			if err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			ev := engine.Event{Name: it.Event, Dir: dir, Target: target, Args: it.Args, User: req.User}
			if err := s.eng.Post(ev); err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			body = append(body, fmt.Sprintf("%d ok %s", i, it.Event))
			posted++
		}
		if posted > 0 {
			if err := s.kick(); err != nil {
				return fail("%v", err)
			}
		}
		verb := "posted"
		if s.async {
			verb = "queued"
		} else if posted > 0 {
			if err := s.ackGate(); err != nil {
				return fail("%v", err)
			}
		}
		return wire.Response{OK: posted == len(req.Args),
			Detail: fmt.Sprintf("%s %d/%d", verb, posted, len(req.Args)), Body: body}, false

	case wire.VerbCreate:
		if len(req.Args) != 2 {
			return fail("CREATE wants <block> <view>")
		}
		k, err := s.eng.CreateOID(req.Args[0], req.Args[1], req.User)
		if err != nil {
			return fail("%v", err)
		}
		if err := s.kick(); err != nil {
			return fail("%v", err)
		}
		// The OID itself was created synchronously above; in async mode
		// the kick has not committed anything yet, so make the creation
		// durable before acknowledging it.
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		if err := s.ackGate(); err != nil {
			return fail("%v", err)
		}
		return ok("%s", k)

	case wire.VerbLink:
		if len(req.Args) != 3 {
			return fail("LINK wants <use|derive> <from-oid> <to-oid>")
		}
		class, err := meta.ParseLinkClass(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		from, err := meta.ParseKey(req.Args[1])
		if err != nil {
			return fail("from: %v", err)
		}
		to, err := meta.ParseKey(req.Args[2])
		if err != nil {
			return fail("to: %v", err)
		}
		id, err := s.eng.CreateLink(class, from, to)
		if err != nil {
			return fail("%v", err)
		}
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		if err := s.ackGate(); err != nil {
			return fail("%v", err)
		}
		return ok("%d", id)

	case wire.VerbState:
		if len(req.Args) != 1 {
			return fail("STATE wants <oid>")
		}
		k, err := meta.ParseKey(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		o, err := s.eng.DB().GetOID(k)
		if err != nil {
			return fail("%v", err)
		}
		st := state.Evaluate(s.eng.Blueprint(), o)
		body := []string{fmt.Sprintf("ready %v", st.Ready)}
		for _, name := range o.PropNames() {
			body = append(body, fmt.Sprintf("prop %s %s", name, wire.Quote(o.Props[name])))
		}
		for _, r := range st.Reasons {
			body = append(body, "blocking "+r)
		}
		return wire.Response{OK: true, Detail: k.String(), Body: body}, false

	case wire.VerbReport, wire.VerbGap:
		// The buffered form, used by in-process callers (Handle); network
		// connections take the per-row streaming path in serveConn.  Rows
		// are evaluated through the same sorted stream so both forms emit
		// identical bodies.
		v, resp := s.reportGate(req)
		if resp != nil {
			return *resp, false
		}
		defer v.Close() // nil-safe
		var body []string
		row := func(st *state.OIDState) bool {
			if req.Verb == wire.VerbGap && st.Ready {
				return true
			}
			body = append(body, reportRow(st))
			return true
		}
		if v != nil {
			state.StreamSortedView(v, s.eng.Blueprint(), row)
		} else {
			state.StreamSorted(s.eng.DB(), s.eng.Blueprint(), row)
		}
		return wire.Response{OK: true, Detail: fmt.Sprintf("%d rows", len(body)), Body: body}, false

	case wire.VerbQuery:
		return s.handleQuery(req), false

	case wire.VerbSnapshot:
		if len(req.Args) != 2 {
			return fail("SNAPSHOT wants <name> <root-oid|*>")
		}
		name := req.Args[0]
		var cfg *meta.Configuration
		var err error
		if req.Args[1] == "*" {
			cfg, err = s.eng.DB().SnapshotQuery(name, func(*meta.OID) bool { return true })
		} else {
			var root meta.Key
			root, err = meta.ParseKey(req.Args[1])
			if err == nil {
				cfg, err = s.eng.DB().SnapshotHierarchy(name, root, meta.FollowAllLinks)
			}
		}
		if err != nil {
			return fail("%v", err)
		}
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		if err := s.ackGate(); err != nil {
			return fail("%v", err)
		}
		return ok("%d oids %d links", len(cfg.OIDs), len(cfg.Links))

	case wire.VerbStats:
		es := s.eng.Stats()
		ds := s.eng.DB().Stats()
		c := &s.counters
		return ok("oids=%d links=%d posted=%d deliveries=%d propagations=%d rules=%d execs=%d"+
			" conns_shed=%d inflight_shed=%d readonly_refused=%d degraded_refused=%d batch_oversize=%d panics=%d",
			ds.OIDs, ds.Links, es.Posted, es.Deliveries, es.Propagations, es.RulesFired, es.Execs,
			c.ConnsShed.Load(), c.InflightShed.Load(), c.ReadOnlyRefused.Load(),
			c.DegradedRefused.Load(), c.BatchOversize.Load(), c.Panics.Load())

	case wire.VerbLatest:
		if len(req.Args) != 2 {
			return fail("LATEST wants <block> <view>")
		}
		k, err := s.eng.DB().Latest(req.Args[0], req.Args[1])
		if err != nil {
			return fail("%v", err)
		}
		return ok("%s", k)

	case wire.VerbProp:
		if len(req.Args) != 2 {
			return fail("PROP wants <oid> <name>")
		}
		k, err := meta.ParseKey(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		v, set, err := s.eng.DB().GetProp(k, req.Args[1])
		if err != nil {
			return fail("%v", err)
		}
		if !set {
			return ok("unset")
		}
		return ok("set %s", wire.Quote(v))

	case wire.VerbLinks:
		if len(req.Args) != 1 {
			return fail("LINKS wants <oid>")
		}
		k, err := meta.ParseKey(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		if !s.eng.DB().HasOID(k) {
			return fail("oid %v: not found", k)
		}
		var body []string
		for _, l := range s.eng.DB().LinksOf(k) {
			line := fmt.Sprintf("%d %s %s %s", l.ID, l.Class, l.From, l.To)
			if t := l.Type(); t != "" {
				line += " type=" + wire.Quote(t)
			}
			if evs := l.PropagateList(); len(evs) > 0 {
				line += " propagates=" + wire.Quote(strings.Join(evs, ","))
			}
			body = append(body, line)
		}
		return wire.Response{OK: true, Detail: fmt.Sprintf("%d links", len(body)), Body: body}, false

	case wire.VerbDot:
		if len(req.Args) != 1 {
			return fail("DOT wants flow or state")
		}
		var doc string
		switch strings.ToLower(req.Args[0]) {
		case "flow":
			doc = viz.FlowDOT(s.eng.Blueprint())
		case "state":
			doc = viz.StateDOT(s.eng.DB(), s.eng.Blueprint())
		default:
			return fail("DOT wants flow or state")
		}
		body := strings.Split(strings.TrimRight(doc, "\n"), "\n")
		return wire.Response{OK: true, Detail: req.Args[0], Body: body}, false

	case wire.VerbBlueprint:
		src := bpl.Print(s.eng.Blueprint())
		body := strings.Split(strings.TrimRight(src, "\n"), "\n")
		return wire.Response{OK: true, Detail: s.eng.Blueprint().Name, Body: body}, false

	case wire.VerbBPSwap:
		// Swap the live blueprint: parse, analyze and atomically install
		// the new policy while events keep flowing.  The swap is node
		// configuration, not project data — it is NOT journaled and does
		// not replicate; each node carries its own policy (docs/LOAD.md).
		if len(req.Args) != 1 {
			return fail("BPSWAP wants exactly one <source> arg")
		}
		bp, err := bpl.Parse(req.Args[0])
		if err != nil {
			return fail("BPSWAP: %v", err)
		}
		if err := s.eng.SetBlueprint(bp); err != nil {
			return fail("BPSWAP: %v", err)
		}
		return ok("blueprint %s installed (%d views)", bp.Name, len(bp.Views))

	default:
		return fail("unknown verb %q", req.Verb)
	}
}

// healthFields renders the ROLE health suffix.  The reason is folded to
// one space-free token so the line stays trivially field-splittable.
func healthFields(healthy bool, reason string) string {
	if healthy {
		return " health=ok"
	}
	return " health=degraded reason=" + healthToken(reason)
}

// followerHealthFields derives a follower's health suffix: its own
// replication loop failing terminally, or its upstream reporting a
// degraded journal, both surface here.  The checks are optional
// interfaces so any ReadFollower keeps working.
func followerHealthFields(ro ReadFollower) string {
	if e, ok := ro.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			return " health=degraded reason=" + healthToken("replication: "+err.Error())
		}
	}
	if u, ok := ro.(interface{ UpstreamHealth() (bool, string) }); ok {
		if upOK, reason := u.UpstreamHealth(); !upOK {
			return " health=degraded reason=" + healthToken("upstream: "+reason)
		}
	}
	return " health=ok"
}

// followerStalenessField derives a follower's staleness suffix — the
// wall-clock age, in whole milliseconds, of its last upstream freshness
// evidence (an applied record, a caught-up watermark, or a liveness
// ping).  The check is an optional interface so any ReadFollower keeps
// working; a follower that has never heard from its upstream reports
// nothing rather than a meaningless age.
func followerStalenessField(ro ReadFollower) string {
	if st, ok := ro.(interface{ Staleness() (time.Duration, bool) }); ok {
		if d, known := st.Staleness(); known {
			return fmt.Sprintf(" staleness=%d", d.Milliseconds())
		}
	}
	return ""
}

func healthToken(reason string) string {
	reason = strings.TrimSpace(reason)
	if reason == "" {
		reason = "unknown"
	}
	return strings.ReplaceAll(reason, " ", "_")
}
