package state

import (
	"strings"
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
)

func edtcEngine(t *testing.T) *engine.Engine {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func create(t *testing.T, e *engine.Engine, block, view string) meta.Key {
	t.Helper()
	k, err := e.CreateOID(block, view, "tester")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEvaluateReasons(t *testing.T) {
	e := edtcEngine(t)
	sch := create(t, e, "CPU", "schematic")
	o, err := e.DB().GetOID(sch)
	if err != nil {
		t.Fatal(err)
	}
	st := Evaluate(e.Blueprint(), o)
	if st.Ready {
		t.Error("fresh schematic reported ready")
	}
	if st.Lets["state"] {
		t.Error("state let true at defaults")
	}
	if len(st.Reasons) != 2 {
		t.Errorf("reasons = %v, want the two failing conjuncts", st.Reasons)
	}
	joined := strings.Join(st.Reasons, "\n")
	if !strings.Contains(joined, "nl_sim_res") || !strings.Contains(joined, "lvs_res") {
		t.Errorf("reasons lack property names: %v", st.Reasons)
	}
	if strings.Contains(joined, "uptodate") {
		t.Errorf("passing conjunct reported: %v", st.Reasons)
	}
}

func TestReportLatestOnly(t *testing.T) {
	e := edtcEngine(t)
	create(t, e, "CPU", "schematic")
	v2 := create(t, e, "CPU", "schematic")
	rep := Report(e.DB(), e.Blueprint())
	if len(rep) != 1 {
		t.Fatalf("report entries = %d", len(rep))
	}
	if rep[0].Key != v2 {
		t.Errorf("report key = %v, want latest %v", rep[0].Key, v2)
	}
}

func TestGapAndSummarize(t *testing.T) {
	e := edtcEngine(t)
	db := e.DB()
	sch := create(t, e, "CPU", "schematic")
	create(t, e, "CPU", "HDL_model") // no lets: vacuously ready
	lay := create(t, e, "CPU", "layout")

	gap := Gap(db, e.Blueprint())
	if len(gap) != 2 {
		t.Fatalf("gap = %d entries, want schematic+layout", len(gap))
	}

	// Satisfy the schematic.
	for name, v := range map[string]string{"nl_sim_res": "good", "lvs_res": "is_equiv"} {
		if err := db.SetProp(sch, name, v); err != nil {
			t.Fatal(err)
		}
	}
	gap = Gap(db, e.Blueprint())
	if len(gap) != 1 || gap[0].Key != lay {
		t.Errorf("gap after fixing schematic = %+v", gap)
	}

	sums := Summarize(Report(db, e.Blueprint()))
	byView := map[string]ViewSummary{}
	for _, s := range sums {
		byView[s.View] = s
	}
	if s := byView["schematic"]; s.Total != 1 || s.Ready != 1 {
		t.Errorf("schematic summary = %+v", s)
	}
	if s := byView["layout"]; s.Total != 1 || s.Ready != 0 {
		t.Errorf("layout summary = %+v", s)
	}
}

func TestFormat(t *testing.T) {
	e := edtcEngine(t)
	create(t, e, "CPU", "schematic")
	out := Format(Report(e.DB(), e.Blueprint()))
	if !strings.Contains(out, "CPU,schematic,1") || !strings.Contains(out, "no") {
		t.Errorf("Format output:\n%s", out)
	}
}

func TestDiffConfigurations(t *testing.T) {
	e := edtcEngine(t)
	db := e.DB()
	a := create(t, e, "CPU", "schematic")
	if _, err := db.SnapshotQuery("before", func(*meta.OID) bool { return true }); err != nil {
		t.Fatal(err)
	}
	b := create(t, e, "REG", "schematic")
	if _, err := db.SnapshotQuery("after", func(*meta.OID) bool { return true }); err != nil {
		t.Fatal(err)
	}
	d, err := DiffConfigurations(db, "before", "after")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0] != b {
		t.Errorf("Added = %v", d.Added)
	}
	if len(d.Removed) != 0 || d.Common != 1 {
		t.Errorf("diff = %+v", d)
	}
	_ = a
	if _, err := DiffConfigurations(db, "before", "ghost"); err == nil {
		t.Error("missing configuration accepted")
	}
}

func TestBlocked(t *testing.T) {
	e := edtcEngine(t)
	db := e.DB()
	hdl := create(t, e, "CPU", "HDL_model")
	sch := create(t, e, "CPU", "schematic")
	nl := create(t, e, "CPU", "netlist")
	lay := create(t, e, "CPU", "layout")
	mustLink := func(from, to meta.Key) {
		t.Helper()
		if _, err := e.CreateLink(meta.DeriveLink, from, to); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(hdl, sch)
	mustLink(sch, nl)
	mustLink(sch, lay)
	blocked := Blocked(db, hdl, "outofdate")
	if len(blocked) != 3 {
		t.Errorf("Blocked = %v, want schematic, netlist, layout", blocked)
	}
	// lvs only crosses the schematic->layout equivalence link.
	lvsBlocked := Blocked(db, sch, "lvs")
	if len(lvsBlocked) != 1 || lvsBlocked[0] != lay {
		t.Errorf("Blocked(lvs) = %v", lvsBlocked)
	}
}

// TestStreamMatchesReport: the streaming pull API yields exactly the rows
// of the materializing Report, minus the property-map copies.
func TestStreamMatchesReport(t *testing.T) {
	e := edtcEngine(t)
	for _, blk := range []string{"alu", "reg", "shifter"} {
		create(t, e, blk, "schematic")
		create(t, e, blk, "HDL_model")
	}
	rep := Report(e.DB(), e.Blueprint())
	want := map[string]string{}
	for _, st := range rep {
		want[st.Key.String()] = strings.Join(st.Reasons, ";")
	}

	seen := map[string]string{}
	ready := 0
	Stream(e.DB(), e.Blueprint(), func(st *OIDState) bool {
		seen[st.Key.String()] = strings.Join(st.Reasons, ";")
		if st.Ready {
			ready++
		}
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("stream yielded %d rows, report %d", len(seen), len(want))
	}
	for k, reasons := range want {
		if seen[k] != reasons {
			t.Errorf("%s: stream reasons %q != report %q", k, seen[k], reasons)
		}
	}
	for _, st := range rep {
		if st.Ready {
			ready--
		}
	}
	if ready != 0 {
		t.Error("ready counts differ between Stream and Report")
	}

	// Early stop is honored.
	calls := 0
	Stream(e.DB(), e.Blueprint(), func(*OIDState) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("stream continued after false: %d calls", calls)
	}
}
