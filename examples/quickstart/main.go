// Quickstart: stand up a project from the paper's example BluePrint, track
// a design object through simulation, and query the project state.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	log.SetFlags(0)

	// A project is a meta-database plus a policy plus the run-time engine.
	proj, err := repro.NewProject(repro.EDTCExample)
	if err != nil {
		log.Fatal(err)
	}

	// A designer creates the first version of the CPU's HDL model.  The
	// BluePrint's template rules attach the sim_result property with its
	// default value.
	hdl, err := proj.Engine.CreateOID("CPU", "HDL_model", "yves")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created:", hdl)

	// The simulator wrapper posts the designer's interpretation of the
	// run: postEvent hdl_sim down CPU,HDL_model,1 "4 errors"
	err = proj.Engine.PostAndDrain(repro.Event{
		Name: "hdl_sim", Dir: repro.DirDown, Target: hdl,
		Args: []string{"4 errors"}, User: "yves",
	})
	if err != nil {
		log.Fatal(err)
	}
	v, _, _ := proj.DB.GetProp(hdl, "sim_result")
	fmt.Println("sim_result:", v)

	// Fix the model: a new version.  Properties with default inheritance
	// reset; the version chain grows.
	hdl2, err := proj.Engine.CreateOID("CPU", "HDL_model", "yves")
	if err != nil {
		log.Fatal(err)
	}
	err = proj.Engine.PostAndDrain(repro.Event{
		Name: "hdl_sim", Dir: repro.DirDown, Target: hdl2,
		Args: []string{"good"}, User: "yves",
	})
	if err != nil {
		log.Fatal(err)
	}

	// The project state report answers "what still needs work".
	fmt.Println()
	fmt.Print(repro.FormatReport(repro.Report(proj.DB, proj.Blueprint)))
}
