package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/server"
)

func TestBPCheckSourceValid(t *testing.T) {
	var out, errw bytes.Buffer
	ok := BPCheckSource(&out, &errw, "edtc.bp", bpl.EDTCExample, false, false)
	if !ok {
		t.Fatalf("valid blueprint rejected:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "blueprint EDTC_example ok") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(out.String(), "6 views") {
		t.Errorf("view count missing: %q", out.String())
	}
}

func TestBPCheckSourcePrintForm(t *testing.T) {
	var out, errw bytes.Buffer
	if !BPCheckSource(&out, &errw, "x", bpl.EDTCExample, true, true) {
		t.Fatal("rejected")
	}
	// The canonical form is printed and reparses.
	idx := strings.Index(out.String(), "blueprint EDTC_example\n")
	if idx < 0 {
		t.Fatalf("canonical form missing:\n%s", out.String())
	}
	if _, err := bpl.Parse(out.String()[idx:]); err != nil {
		t.Errorf("printed form does not parse: %v", err)
	}
}

func TestBPCheckSourceInvalid(t *testing.T) {
	var out, errw bytes.Buffer
	if BPCheckSource(&out, &errw, "bad", "not a blueprint", false, false) {
		t.Error("garbage accepted")
	}
	if !strings.Contains(errw.String(), "bad:") {
		t.Errorf("error output = %q", errw.String())
	}
	// Analyzer errors also fail.
	errw.Reset()
	src := "blueprint b\nview v\nproperty p default a\nproperty p default b\nendview\nendblueprint"
	if BPCheckSource(&out, &errw, "dup", src, false, false) {
		t.Error("duplicate property accepted")
	}
	if !strings.Contains(errw.String(), "duplicate property") {
		t.Errorf("diagnostics = %q", errw.String())
	}
}

func TestBPCheckFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bp")
	if err := os.WriteFile(good, []byte(bpl.EDTCExample), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.bp")
	if err := os.WriteFile(bad, []byte("blueprint"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if !BPCheckFiles(&out, &errw, []string{good}, false, false) {
		t.Errorf("good file rejected: %s", errw.String())
	}
	if BPCheckFiles(&out, &errw, []string{good, bad}, false, false) {
		t.Error("bad file accepted")
	}
	if BPCheckFiles(&out, &errw, []string{filepath.Join(dir, "missing.bp")}, false, false) {
		t.Error("missing file accepted")
	}
}

func startServerClient(t *testing.T) *server.Client {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.User = "cli"
	return c
}

func TestDQuerySubcommands(t *testing.T) {
	c := startServerClient(t)
	hdl, err := c.Create("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := c.Create("CPU", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Link("derive", hdl, sch); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) string {
		t.Helper()
		var out bytes.Buffer
		if err := DQuery(&out, c, args); err != nil {
			t.Fatalf("dquery %v: %v", args, err)
		}
		return out.String()
	}

	if got := run("state", sch.String()); !strings.Contains(got, "ready=false") ||
		!strings.Contains(got, "uptodate = true") {
		t.Errorf("state output:\n%s", got)
	}
	if got := run("report"); !strings.Contains(got, "CPU,HDL_model,1") {
		t.Errorf("report output:\n%s", got)
	}
	if got := run("gap"); !strings.Contains(got, "CPU,schematic,1") {
		t.Errorf("gap output:\n%s", got)
	}
	if got := run("stats"); !strings.Contains(got, "oids=2") {
		t.Errorf("stats output:\n%s", got)
	}
	if got := run("blueprint"); !strings.Contains(got, "blueprint EDTC_example") {
		t.Errorf("blueprint output:\n%s", got)
	}
	if got := run("snapshot", "s1", "*"); !strings.Contains(got, "2 oids") {
		t.Errorf("snapshot output:\n%s", got)
	}
	if got := run("dot", "state"); !strings.Contains(got, "digraph") {
		t.Errorf("dot output:\n%s", got)
	}
	if got := run("links", sch.String()); !strings.Contains(got, "derive") {
		t.Errorf("links output:\n%s", got)
	}

	// Error paths.
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"state"},
		{"state", "nokey"},
		{"snapshot", "only"},
		{"dot"},
		{"links"},
		{"links", "nokey"},
	} {
		if err := DQuery(&out, c, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestFlowSimModes(t *testing.T) {
	for _, mode := range []string{"scenario", "dsm", "workload"} {
		var out bytes.Buffer
		err := FlowSim(&out, FlowSimConfig{
			Mode: mode, Seed: 11, Blocks: 2, Steps: 40, DefectRate: 20,
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if out.Len() == 0 {
			t.Errorf("mode %s produced no output", mode)
		}
	}
	var out bytes.Buffer
	if err := FlowSim(&out, FlowSimConfig{Mode: "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestFlowSimScenarioOutput(t *testing.T) {
	var out bytes.Buffer
	if err := FlowSim(&out, FlowSimConfig{Mode: "scenario", Seed: 1995}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"first simulation:    4 errors",
		"second simulation:   good",
		"CPU,HDL_model,3",
		"project state",
		"statistics",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scenario output missing %q:\n%s", want, got)
		}
	}
}
