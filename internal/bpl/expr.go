package bpl

import "strings"

// Expression language for continuous assignments:
//
//	let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)
//
// Operands are $property references and string/identifier literals.
// Comparisons (== and !=) compare strings; and/or/not combine booleans.
// A bare operand used as a boolean is true when its value equals "true".

// Expr is a boolean expression node.
type Expr interface {
	exprNode()
	// Eval evaluates the expression; lookup resolves $references.
	Eval(lookup LookupFunc) bool
	// String renders canonical source whose reparse yields an equal tree.
	String() string
}

// Operand is a string-valued leaf: a $reference or a literal.
type Operand struct {
	// Var is the referenced name for $references; empty for literals.
	Var string
	// Lit is the literal value when Var is empty.
	Lit string
}

// Value resolves the operand to its string value.
func (o Operand) Value(lookup LookupFunc) string {
	if o.Var != "" {
		if lookup == nil {
			return ""
		}
		return lookup(o.Var)
	}
	return o.Lit
}

// Source renders the operand.
func (o Operand) Source() string {
	if o.Var != "" {
		return "$" + o.Var
	}
	if o.Lit != "" && isBareIdent(o.Lit) && o.Lit != "and" && o.Lit != "or" && o.Lit != "not" {
		return o.Lit
	}
	return quote(strings.ReplaceAll(o.Lit, "$", `\$`))
}

// BoolExpr wraps a bare operand used in boolean position; it is true when
// the operand's value is exactly "true".
type BoolExpr struct {
	X Operand
}

// CmpExpr is "L == R" or "L != R".
type CmpExpr struct {
	Neq  bool
	L, R Operand
}

// NotExpr is "not X".
type NotExpr struct {
	X Expr
}

// AndExpr is "L and R".
type AndExpr struct {
	L, R Expr
}

// OrExpr is "L or R".
type OrExpr struct {
	L, R Expr
}

func (*BoolExpr) exprNode() {}
func (*CmpExpr) exprNode()  {}
func (*NotExpr) exprNode()  {}
func (*AndExpr) exprNode()  {}
func (*OrExpr) exprNode()   {}

// Eval implements Expr.
func (e *BoolExpr) Eval(lookup LookupFunc) bool { return e.X.Value(lookup) == "true" }

// Eval implements Expr.
func (e *CmpExpr) Eval(lookup LookupFunc) bool {
	eq := e.L.Value(lookup) == e.R.Value(lookup)
	if e.Neq {
		return !eq
	}
	return eq
}

// Eval implements Expr.
func (e *NotExpr) Eval(lookup LookupFunc) bool { return !e.X.Eval(lookup) }

// Eval implements Expr.
func (e *AndExpr) Eval(lookup LookupFunc) bool { return e.L.Eval(lookup) && e.R.Eval(lookup) }

// Eval implements Expr.
func (e *OrExpr) Eval(lookup LookupFunc) bool { return e.L.Eval(lookup) || e.R.Eval(lookup) }

// precedence levels for printing: or < and < unary.
func exprPrec(e Expr) int {
	switch e.(type) {
	case *OrExpr:
		return 1
	case *AndExpr:
		return 2
	default:
		return 3
	}
}

// renderChild parenthesizes child expressions that would reassociate when
// reparsed: lower-precedence children always, and — because the parser
// builds left-associative chains — right children of equal precedence.
func renderChild(child Expr, parentPrec int, rightSide bool) string {
	p := exprPrec(child)
	if p < parentPrec || (rightSide && p == parentPrec) {
		return "(" + child.String() + ")"
	}
	return child.String()
}

// String implements Expr.
func (e *BoolExpr) String() string { return e.X.Source() }

// String implements Expr.  Comparisons always print parenthesized, matching
// the paper's style: ($sim == ok).
func (e *CmpExpr) String() string {
	op := "=="
	if e.Neq {
		op = "!="
	}
	return "(" + e.L.Source() + " " + op + " " + e.R.Source() + ")"
}

// String implements Expr.
func (e *NotExpr) String() string {
	if exprPrec(e.X) < 3 {
		return "not (" + e.X.String() + ")"
	}
	return "not " + e.X.String()
}

// String implements Expr.
func (e *AndExpr) String() string {
	return renderChild(e.L, 2, false) + " and " + renderChild(e.R, 2, true)
}

// String implements Expr.
func (e *OrExpr) String() string {
	return renderChild(e.L, 1, false) + " or " + renderChild(e.R, 1, true)
}

// ExprVars returns every $reference in the expression, in evaluation order.
func ExprVars(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *BoolExpr:
			if n.X.Var != "" {
				out = append(out, n.X.Var)
			}
		case *CmpExpr:
			if n.L.Var != "" {
				out = append(out, n.L.Var)
			}
			if n.R.Var != "" {
				out = append(out, n.R.Var)
			}
		case *NotExpr:
			walk(n.X)
		case *AndExpr:
			walk(n.L)
			walk(n.R)
		case *OrExpr:
			walk(n.L)
			walk(n.R)
		}
	}
	walk(e)
	return out
}

// ExplainFailure walks a failed boolean expression and returns the leaf
// conditions that evaluate false under the lookup — the "what still needs to
// be modified" answer for state queries.  For a passing expression it
// returns nil.  Disjunctions report all failing alternatives.
func ExplainFailure(e Expr, lookup LookupFunc) []string {
	if e.Eval(lookup) {
		return nil
	}
	var out []string
	var walk func(Expr, bool) // negated context
	walk = func(e Expr, neg bool) {
		switch n := e.(type) {
		case *NotExpr:
			walk(n.X, !neg)
		case *AndExpr:
			// In positive context, an and fails if either side fails.
			walk(n.L, neg)
			walk(n.R, neg)
		case *OrExpr:
			walk(n.L, neg)
			walk(n.R, neg)
		default:
			val := e.Eval(lookup)
			if val == neg { // leaf contributes to the failure
				desc := e.String()
				if neg {
					desc = "not " + desc
				}
				out = append(out, describeLeaf(e, lookup, desc))
			}
		}
	}
	walk(e, false)
	return out
}

func describeLeaf(e Expr, lookup LookupFunc, desc string) string {
	switch n := e.(type) {
	case *CmpExpr:
		var sb strings.Builder
		sb.WriteString(desc)
		sb.WriteString(" [")
		sb.WriteString(n.L.Source())
		sb.WriteString(" = ")
		sb.WriteString(quote(n.L.Value(lookup)))
		sb.WriteString("]")
		return sb.String()
	case *BoolExpr:
		return desc + " [" + n.X.Source() + " = " + quote(n.X.Value(lookup)) + "]"
	default:
		return desc
	}
}
