// Package journal persists the meta-database as an append-only record log
// plus periodic snapshots — the production persistence layer that replaces
// whole-database Save/Load as the only durability mechanism.
//
// # On-disk layout
//
// A journal directory holds two kinds of files:
//
//   - journal-<lsn16>.log — log segments.  Each starts with a header —
//     "DJL2 <term16>\n" stamping the election term the segment opened in,
//     or the legacy 5-byte "DJL1\n" magic implying term 1 — followed by
//     framed records.  The 16-hex-digit name is the LSN of the first
//     record the segment may contain; segments are strictly ordered and
//     records within and across segments carry consecutive LSNs.
//   - snapshot-<lsn16>.json — a whole-database document in the exact
//     meta.Save JSON format, consistent as of LSN <lsn16>: it contains the
//     effect of every record with LSN ≤ <lsn16> and nothing newer.
//
// Each record is framed as
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// and the payload is a wire-protocol text line (the same quoting the
// DAMOCLES servers speak): "<lsn> <seq> <op> <args...>", decodable with
// wire.Tokenize.  The log is therefore greppable with standard tools, and
// a record stream can be shipped over the wire protocol unmodified.
//
// # Writing
//
// The Writer implements meta.Recorder: the database hands it one record
// per committed mutation, under the locks that serialize that mutation, so
// the log order is a valid replay order.  Record only appends to an
// in-memory buffer (no I/O under database locks); the buffer reaches the
// operating system at explicit Commit points — the run-time engine commits
// after every drain, the project server after every non-drain mutation —
// or when it outgrows an internal bound.  Segments rotate at a size
// threshold.
//
// Snapshots run concurrently with writers: meta.SnapshotTo collects the
// document under read locks only (checkins on other shards proceed, and no
// writer is ever blocked for the JSON encode or the file write), and the
// capture hook pins the exact LSN the document reflects.  A snapshot is
// written to a temporary file and renamed into place, so a crash never
// leaves a half-written snapshot under a valid name.  After a successful
// snapshot, compaction deletes every segment whose records the snapshot
// fully covers, and every older snapshot.
//
// # Recovery
//
// Open (or the read-only Replay) restores the database by loading the
// newest snapshot and replaying every record with a larger LSN from the
// remaining segments, in LSN order, via meta.ApplyRecord.  A torn final
// record — short frame, impossible length, CRC mismatch, or an
// unparseable payload at the tail of the last segment — is truncated away
// (the crash interrupted its write; it was never acknowledged); the same
// damage anywhere else fails recovery loudly.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"repro/internal/meta"
	"repro/internal/wire"
)

// segMagic opens every v1 segment file; the digit is the format version.
// v1 segments predate election terms and imply the genesis term 1.
const segMagic = "DJL1\n"

// Segment header v2: "DJL2 " followed by the segment's opening election
// term as 16 lower-case hex digits and a newline — fixed width so the
// header parses (and its torn prefixes classify) without scanning.  The
// term stamped is the writer's term when the segment was created; a
// term-bump record may raise it mid-segment, so across a journal the
// headers are non-decreasing, never decreasing — a regression means
// doctored or shuffled files and is refused.
const (
	segMagicV2   = "DJL2 "
	segHeaderLen = len(segMagicV2) + 16 + 1
)

// encodeSegHeader renders the v2 header for a segment opening at term.
func encodeSegHeader(term int64) []byte {
	return []byte(fmt.Sprintf("%s%016x\n", segMagicV2, term))
}

// parseSegHeader decodes the header at the front of a segment, accepting
// both formats: v2 returns its stamped term, v1 the genesis term 1.  n is
// the header length consumed.
func parseSegHeader(data []byte) (term int64, n int, err error) {
	if len(data) >= segHeaderLen && string(data[:len(segMagicV2)]) == segMagicV2 {
		if data[segHeaderLen-1] != '\n' {
			return 0, 0, fmt.Errorf("bad v2 header terminator")
		}
		t, perr := strconv.ParseInt(string(data[len(segMagicV2):segHeaderLen-1]), 16, 64)
		if perr != nil || t < 1 {
			return 0, 0, fmt.Errorf("bad v2 header term %q", data[len(segMagicV2):segHeaderLen-1])
		}
		return t, segHeaderLen, nil
	}
	if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
		return 1, len(segMagic), nil
	}
	return 0, 0, fmt.Errorf("bad magic")
}

// tornSegHeaderPrefix reports whether data — an entire segment shorter
// than a full header — is a strict prefix of a valid header of either
// format: the crash hit during segment creation, before any record could
// have been acknowledged.
func tornSegHeaderPrefix(data []byte) bool {
	if len(data) < len(segMagic) {
		// Shorter than both magics: a prefix of either string qualifies.
		if string(data) == segMagic[:len(data)] || string(data) == segMagicV2[:len(data)] {
			return true
		}
		return false
	}
	if len(data) >= segHeaderLen || string(data[:len(segMagicV2)]) != segMagicV2 {
		return false
	}
	for _, c := range data[len(segMagicV2):] {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// frameHeader is the per-record framing overhead: payload length + CRC.
const frameHeader = 8

// maxRecordLen bounds one record's payload.  A length field beyond it is
// treated as corruption, not an allocation request.
const maxRecordLen = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendPayload renders a record as its wire-line payload into dst — the
// writer reuses one scratch buffer across records, so the hot append path
// allocates nothing per record beyond buffer growth.
func appendPayload(dst []byte, r meta.Record) []byte {
	dst = strconv.AppendInt(dst, r.LSN, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, r.Seq, 10)
	dst = append(dst, ' ')
	dst = wire.AppendQuote(dst, r.Op)
	for _, a := range r.Args {
		dst = append(dst, ' ')
		dst = wire.AppendQuote(dst, a)
	}
	return dst
}

// encodePayload renders a record as a fresh payload slice (tests and
// one-shot paths); the writer's hot path uses appendPayload.
func encodePayload(r meta.Record) []byte {
	return appendPayload(nil, r)
}

// validFrameAt reports whether a complete, checksummed, decodable record
// frame starts at offset off in data.  CRC-32C makes a false positive on
// corrupt bytes astronomically unlikely, so recovery uses it to tell a
// torn tail (nothing valid follows the damage) from mid-stream corruption
// (a real record does).
func validFrameAt(data []byte, off int) bool {
	if off+frameHeader > len(data) {
		return false
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if n > maxRecordLen || off+frameHeader+n > len(data) {
		return false
	}
	payload := data[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
		return false
	}
	_, err := decodePayload(payload)
	return err == nil
}

// decodePayload parses a record payload.
func decodePayload(b []byte) (meta.Record, error) {
	fields, err := wire.Tokenize(string(b))
	if err != nil {
		return meta.Record{}, fmt.Errorf("journal: record payload: %w", err)
	}
	if len(fields) < 3 {
		return meta.Record{}, fmt.Errorf("journal: record payload wants ≥3 fields, got %d", len(fields))
	}
	lsn, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return meta.Record{}, fmt.Errorf("journal: record lsn %q: %v", fields[0], err)
	}
	seq, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return meta.Record{}, fmt.Errorf("journal: record seq %q: %v", fields[1], err)
	}
	r := meta.Record{LSN: lsn, Seq: seq, Op: fields[2]}
	if len(fields) > 3 {
		r.Args = fields[3:]
	}
	return r, nil
}

// segmentName / snapshotName render the canonical file names.
func segmentName(firstLSN int64) string { return fmt.Sprintf("journal-%016x.log", firstLSN) }
func snapshotName(lsn int64) string     { return fmt.Sprintf("snapshot-%016x.json", lsn) }

// parseSeqName extracts the LSN from a "<prefix><lsn16><suffix>" file name.
func parseSeqName(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseInt(hex, 16, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
