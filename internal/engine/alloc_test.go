//go:build !race

package engine

import (
	"testing"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// Allocation budgets for the compiled-policy fast path.  These are
// regression guards, not targets: the budgets have headroom over the
// current numbers (measured well below each budget), but fail loudly if a
// change reintroduces per-delivery policy resolution, closure-based stat
// bumps, or unconditional trace-entry construction.  Excluded under -race:
// the race runtime changes allocation behavior.

// allocEngine builds a three-node use-link chain under a policy whose rule
// assigns on every delivery, the shape of one real invalidation hop.
func allocEngine(t *testing.T) (*Engine, meta.Key) {
	t.Helper()
	bp, err := bpl.Parse(strictChainSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	var keys []meta.Key
	for _, name := range []string{"a", "b", "c"} {
		k, err := e.CreateOID(name, "node", "tess")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for i := 0; i+1 < len(keys); i++ {
		if _, err := e.CreateLink(meta.UseLink, keys[i], keys[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	return e, keys[0]
}

func TestAllocsPerDelivery(t *testing.T) {
	e, root := allocEngine(t)
	ev := Event{Name: "ping", Dir: bpl.DirDown, Target: root}

	// One wave: three deliveries (rules on each node), two propagations.
	const budget = 24
	got := testing.AllocsPerRun(200, func() {
		if err := e.PostAndDrain(ev); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Errorf("PostAndDrain wave: %.1f allocs, budget %d", got, budget)
	}
}

func TestAllocsNonPropagatingEvent(t *testing.T) {
	e, root := allocEngine(t)
	// No rule matches and no link propagates this event: the delivery must
	// cost almost nothing — no policy resolution, no visited set, no trace.
	ev := Event{Name: "noop_event", Dir: bpl.DirDown, Target: root}

	const budget = 6
	got := testing.AllocsPerRun(200, func() {
		if err := e.PostAndDrain(ev); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Errorf("non-propagating PostAndDrain: %.1f allocs, budget %d", got, budget)
	}
}

func TestAllocsStatsSnapshot(t *testing.T) {
	e, _ := allocEngine(t)
	if got := testing.AllocsPerRun(100, func() { _ = e.Stats() }); got > 1 {
		t.Errorf("Stats snapshot: %.1f allocs, want <= 1", got)
	}
}
