package wrapper

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/server"
	"repro/internal/tools"
)

func startRemote(t *testing.T) *Remote {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.User = "remote-designer"
	return NewRemote(c, tools.NewSuite(314))
}

// TestRemoteFullFlow drives the front of the design flow entirely across
// TCP: every permission check, creation, link and event is a protocol
// round trip; only the design data stays local to the wrapper.
func TestRemoteFullFlow(t *testing.T) {
	r := startRemote(t)
	hdl, err := r.CheckinHDL("CPU", 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.RunHDLSim(hdl); err != nil || res != "good" {
		t.Fatalf("hdl_sim = %q %v", res, err)
	}
	lib, err := r.InstallLibrary("stdlib")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := r.Synthesize(hdl, lib)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := r.RunNetlister(sch)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.RunNetlistSim(nl); err != nil || res != "good" {
		t.Fatalf("nl_sim = %q %v", res, err)
	}
	// The nl_sim result reached the schematic server-side.
	v, ok, err := r.Client.Prop(sch, "nl_sim_res")
	if err != nil || !ok || v != "good" {
		t.Errorf("remote nl_sim_res = %q %v %v", v, ok, err)
	}
}

func TestRemotePermissionDenied(t *testing.T) {
	r := startRemote(t)
	hdl, err := r.CheckinHDL("CPU", 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunHDLSim(hdl); err != nil {
		t.Fatal(err)
	}
	lib, err := r.InstallLibrary("stdlib")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := r.Synthesize(hdl, lib)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := r.RunNetlister(sch)
	if err != nil {
		t.Fatal(err)
	}
	// A new model version invalidates downstream data server-side; the
	// remote wrapper's permission query sees it.
	if _, err := r.CheckinHDL("CPU", 81, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunNetlistSim(nl); !errors.Is(err, ErrStale) {
		t.Errorf("stale remote sim: %v", err)
	}
	// Unverified synthesis is refused remotely too.
	hdl3, err := r.CheckinHDL("CPU", 82, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunHDLSim(hdl3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Synthesize(hdl3, lib); !errors.Is(err, ErrNotReady) {
		t.Errorf("unverified remote synthesis: %v", err)
	}
}

func TestRemoteLatestAndDot(t *testing.T) {
	r := startRemote(t)
	if _, err := r.CheckinHDL("CPU", 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CheckinHDL("CPU", 11, 0); err != nil {
		t.Fatal(err)
	}
	k, err := r.Client.Latest("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if k.Version != 2 {
		t.Errorf("Latest = %v", k)
	}
	if _, err := r.Client.Latest("ghost", "HDL_model"); err == nil {
		t.Error("missing chain accepted")
	}
	flowDot, err := r.Client.Dot("flow")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flowDot, "digraph") || !strings.Contains(flowDot, "schematic") {
		t.Errorf("flow dot:\n%s", flowDot)
	}
	stateDot, err := r.Client.Dot("state")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stateDot, "CPU,HDL_model,2") {
		t.Errorf("state dot:\n%s", stateDot)
	}
	if _, err := r.Client.Dot("nonsense"); err == nil {
		t.Error("bad dot kind accepted")
	}
}

func TestRemotePropQuoting(t *testing.T) {
	r := startRemote(t)
	k, err := r.CheckinHDL("CPU", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunHDLSim(k); err != nil {
		t.Fatal(err)
	}
	// "2 errors" has a space: the PROP response must quote it correctly.
	v, ok, err := r.Client.Prop(k, "sim_result")
	if err != nil || !ok || v != "2 errors" {
		t.Errorf("prop = %q %v %v", v, ok, err)
	}
	// Unset property.
	_, ok, err = r.Client.Prop(k, "never_set")
	if err != nil || ok {
		t.Errorf("unset prop = %v %v", ok, err)
	}
}

// TestRemoteCheckinHierarchy batches a whole hierarchy's check-in events
// into one BATCH round-trip and verifies every OID was promoted and its
// invalidation wave processed.
func TestRemoteCheckinHierarchy(t *testing.T) {
	r := startRemote(t)
	var keys []meta.Key
	for _, blk := range []string{"alu", "reg", "shifter", "decoder"} {
		k, err := r.Client.Create(blk, "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		r.Suite.WriteHDL(k, 40, 0)
		keys = append(keys, k)
	}
	if err := r.CheckinHierarchy(keys); err != nil {
		t.Fatal(err)
	}
	if err := r.Client.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := r.RequireUpToDate(k); err != nil {
			t.Errorf("%v not up to date after batched check-in: %v", k, err)
		}
	}
	// Empty input is a no-op, not a protocol error.
	if err := r.CheckinHierarchy(nil); err != nil {
		t.Errorf("empty hierarchy: %v", err)
	}
}
