package meta

import "errors"

// Sentinel errors returned by the meta-database.  Callers should test with
// errors.Is; most constructors wrap these with contextual detail.
var (
	// ErrNotFound reports that a referenced OID, Link, Configuration or
	// workspace does not exist in the meta-database.
	ErrNotFound = errors.New("meta: not found")

	// ErrExists reports an attempt to create an object that already exists.
	ErrExists = errors.New("meta: already exists")

	// ErrBadKey reports a malformed OID key.
	ErrBadKey = errors.New("meta: malformed key")

	// ErrBadName reports an invalid block, view, property or workspace name.
	ErrBadName = errors.New("meta: invalid name")

	// ErrBadVersion reports a non-positive or out-of-chain version number.
	ErrBadVersion = errors.New("meta: invalid version")

	// ErrBadLink reports an ill-formed link, e.g. a use link whose endpoints
	// are of different view types, or a self-link.
	ErrBadLink = errors.New("meta: invalid link")

	// ErrImmutable reports an attempt to mutate an immutable object such as
	// a Configuration snapshot.
	ErrImmutable = errors.New("meta: object is immutable")
)
