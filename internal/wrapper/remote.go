package wrapper

import (
	"fmt"
	"time"

	"repro/internal/meta"
	"repro/internal/server"
	"repro/internal/tools"
	"repro/internal/wire"
)

// Remote is a wrapper session whose meta-database lives across the network
// — the deployment of Figure 1, where wrapper programs run on designers'
// machines and talk to the DAMOCLES project server via postEvent messages.
// The tool suite (the design data itself) stays local to the wrapper; only
// tracking information crosses the wire.
type Remote struct {
	Client *server.Client
	Suite  *tools.Suite
}

// NewRemote binds a connected client and a local tool suite.
func NewRemote(c *server.Client, suite *tools.Suite) *Remote {
	return &Remote{Client: c, Suite: suite}
}

// DialRemote connects to a project server with dial and per-operation
// timeouts, so a wrapper on a designer's machine fails a hung server fast
// (as server.ErrTimeout) instead of blocking a tool invocation forever.
// op 0 disables per-operation deadlines.
func DialRemote(addr string, suite *tools.Suite, dial, op time.Duration) (*Remote, error) {
	c, err := server.DialTimeout(addr, dial, op)
	if err != nil {
		return nil, fmt.Errorf("wrapper: %w", err)
	}
	return &Remote{Client: c, Suite: suite}, nil
}

// RequireUpToDate performs the permission query of section 3.3 remotely.
func (r *Remote) RequireUpToDate(k meta.Key) error {
	v, ok, err := r.Client.Prop(k, "uptodate")
	if err != nil {
		return err
	}
	if !ok || v != "true" {
		return fmt.Errorf("%w: %v (uptodate=%q)", ErrStale, k, v)
	}
	return nil
}

// RequireProp checks a remote property value.
func (r *Remote) RequireProp(k meta.Key, name, want string) error {
	v, _, err := r.Client.Prop(k, name)
	if err != nil {
		return err
	}
	if v != want {
		return fmt.Errorf("%w: %v (%s=%q, want %q)", ErrNotReady, k, name, v, want)
	}
	return nil
}

// CheckinHDL creates a new HDL model version remotely, writes the local
// design data, and posts the check-in event.
func (r *Remote) CheckinHDL(block string, gates, defects int) (meta.Key, error) {
	k, err := r.Client.Create(block, "HDL_model")
	if err != nil {
		return meta.Key{}, err
	}
	r.Suite.WriteHDL(k, gates, defects)
	if err := r.Client.PostEvent("ckin", "down", k); err != nil {
		return meta.Key{}, err
	}
	return k, nil
}

// InstallLibrary registers a library version remotely.
func (r *Remote) InstallLibrary(block string) (meta.Key, error) {
	k, err := r.Client.Create(block, "synth_lib")
	if err != nil {
		return meta.Key{}, err
	}
	r.Suite.InstallLibrary(k)
	if err := r.Client.PostEvent("ckin", "down", k); err != nil {
		return meta.Key{}, err
	}
	return k, nil
}

// CheckinHierarchy posts the ckin events for a whole set of OIDs — a
// designer promoting an assembled hierarchy — in a single BATCH
// round-trip.  The server queues every event and drains once, so the
// invalidation waves of sibling subtrees can be processed concurrently
// instead of paying one network round-trip and one drain per OID.
func (r *Remote) CheckinHierarchy(keys []meta.Key) error {
	if len(keys) == 0 {
		return nil
	}
	items := make([]wire.BatchItem, len(keys))
	for i, k := range keys {
		items[i] = wire.BatchItem{Event: "ckin", Dir: "down", OID: k.String()}
	}
	posted, err := r.Client.PostBatch(items)
	if err != nil {
		return err
	}
	if posted != len(keys) {
		return fmt.Errorf("wrapper: hierarchy check-in: %d/%d events accepted", posted, len(keys))
	}
	return nil
}

// RunHDLSim simulates locally and posts the interpreted result.
func (r *Remote) RunHDLSim(k meta.Key) (string, error) {
	res, err := r.Suite.SimulateHDL(k)
	if err != nil {
		return "", err
	}
	if err := r.Client.PostEvent("hdl_sim", "down", k, res); err != nil {
		return "", err
	}
	return res, nil
}

// Synthesize runs the remote-permission + local-tool + remote-events cycle
// for synthesis.
func (r *Remote) Synthesize(hdl, lib meta.Key) (meta.Key, error) {
	if err := r.RequireUpToDate(hdl); err != nil {
		return meta.Key{}, err
	}
	if err := r.RequireProp(hdl, "sim_result", "good"); err != nil {
		return meta.Key{}, err
	}
	sch, err := r.Client.Create(hdl.Block, "schematic")
	if err != nil {
		return meta.Key{}, err
	}
	if err := r.Client.Link("derive", hdl, sch); err != nil {
		return meta.Key{}, err
	}
	if err := r.Client.Link("derive", lib, sch); err != nil {
		return meta.Key{}, err
	}
	if _, err := r.Suite.Synthesize(hdl, lib, sch); err != nil {
		return meta.Key{}, err
	}
	if err := r.Client.PostEvent("ckin", "down", sch); err != nil {
		return meta.Key{}, err
	}
	return sch, nil
}

// RunNetlister derives a netlist, with the remote permission check.
func (r *Remote) RunNetlister(sch meta.Key) (meta.Key, error) {
	if err := r.RequireUpToDate(sch); err != nil {
		return meta.Key{}, err
	}
	nl, err := r.Client.Create(sch.Block, "netlist")
	if err != nil {
		return meta.Key{}, err
	}
	if err := r.Client.Link("derive", sch, nl); err != nil {
		return meta.Key{}, err
	}
	if _, err := r.Suite.Netlist(sch, nl); err != nil {
		return meta.Key{}, err
	}
	if err := r.Client.PostEvent("ckin", "down", nl); err != nil {
		return meta.Key{}, err
	}
	return nl, nil
}

// RunNetlistSim is the paper's permission example, remote edition.
func (r *Remote) RunNetlistSim(nl meta.Key) (string, error) {
	if err := r.RequireUpToDate(nl); err != nil {
		return "", err
	}
	res, err := r.Suite.SimulateNetlist(nl)
	if err != nil {
		return "", err
	}
	if err := r.Client.PostEvent("nl_sim", "up", nl, res); err != nil {
		return "", err
	}
	return res, nil
}
