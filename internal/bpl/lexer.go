package bpl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer tokenizes BluePrint source.  Whitespace (including newlines) is
// insignificant; comments run from '#' to end of line.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.  The returned slice always ends with a
// TokEOF token on success.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		default:
			return
		}
	}
}

// isIdentStart reports whether c can begin an identifier.
func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_' || c == '/' || c == '.'
}

// isIdentRune reports whether c can continue an identifier.  Identifiers are
// deliberately permissive so tool paths like "netlister.sh" and event names
// like "nl_sim" lex as single tokens.
func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || strings.ContainsRune("_./-", c)
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := lx.peek()
	switch c {
	case '(':
		lx.advance()
		return Token{Kind: TokLParen, Line: line, Col: col}, nil
	case ')':
		lx.advance()
		return Token{Kind: TokRParen, Line: line, Col: col}, nil
	case ';':
		lx.advance()
		return Token{Kind: TokSemi, Line: line, Col: col}, nil
	case ',':
		lx.advance()
		return Token{Kind: TokComma, Line: line, Col: col}, nil
	case '=':
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokEq, Line: line, Col: col}, nil
		}
		return Token{Kind: TokAssign, Line: line, Col: col}, nil
	case '!':
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokNeq, Line: line, Col: col}, nil
		}
		return Token{}, errAt(line, col, "unexpected '!': want '!='")
	case '"':
		return lx.lexString()
	case '$':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) {
			r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
			if !isIdentRune(r) || r == '.' || r == '/' || r == '-' {
				break
			}
			lx.pos += size
			lx.col++
		}
		if lx.pos == start {
			return Token{}, errAt(line, col, "empty $variable name")
		}
		return Token{Kind: TokVar, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if isIdentStart(r) || unicode.IsDigit(r) {
		start := lx.pos
		for lx.pos < len(lx.src) {
			r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
			if !isIdentRune(r) {
				break
			}
			lx.pos += size
			lx.col++
		}
		return Token{Kind: TokIdent, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}
	return Token{}, errAt(line, col, "unexpected character %q", string(r))
}

// lexString scans a double-quoted string.  Supported escapes: \" \\ \n \t.
// $variables inside strings are left verbatim; template expansion happens at
// parse time (see ParseTemplate).
func (lx *Lexer) lexString() (Token, error) {
	line, col := lx.line, lx.col
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, errAt(line, col, "unterminated string")
		}
		c := lx.advance()
		switch c {
		case '"':
			return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil
		case '\n':
			return Token{}, errAt(line, col, "newline in string")
		case '\\':
			if lx.pos >= len(lx.src) {
				return Token{}, errAt(line, col, "unterminated escape")
			}
			e := lx.advance()
			switch e {
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '$':
				// \$ suppresses variable expansion.
				sb.WriteString("\\$")
			default:
				return Token{}, errAt(lx.line, lx.col, "unknown escape \\%c", e)
			}
		default:
			sb.WriteByte(c)
		}
	}
}
