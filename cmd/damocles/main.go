// Command damocles runs the DAMOCLES project server: it loads a BluePrint
// policy file and an optional saved meta-database, listens for wrapper
// connections, and processes design events (Figure 1 of the paper).
//
// Usage:
//
//	damocles [-addr host:port] [-blueprint file] [-db file | -journal dir [-fsync]] [-trace]
//	damocles -follow primary:port -journal dir [-addr host:port] [-blueprint file]
//
// With no -blueprint, the EDTC_example policy from section 3.4 of the
// paper is loaded.  With -db, the meta-database is loaded at startup (if
// the file exists) and saved back on SIGINT/SIGTERM shutdown — the
// original stop-the-world persistence.  With -journal, the database lives
// in an append-only record log with periodic snapshots under the given
// directory: every acknowledged mutation is handed to the operating
// system before its response, so a crashed process (even SIGKILL)
// restarts into the exact acknowledged state by loading the newest
// snapshot and replaying the record tail.  Surviving an OS crash or
// power loss additionally needs -fsync, which forces every commit to
// stable storage at a per-request latency cost.  A journaled server is
// also a replication primary: followers attach with the FOLLOW verb.
//
// With -follow, the process runs as a replication follower instead: it
// mirrors the primary's record stream into its own -journal directory
// (resuming from the persisted applied position across restarts, even
// after SIGKILL) and serves the read verbs — REPORT, GAP, STATE, LSN —
// from the replicated database while refusing writes.  See
// docs/REPLICATION.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/bpl"
	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/replica"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("damocles: ")
	addr := flag.String("addr", "127.0.0.1:7495", "listen address")
	bpFile := flag.String("blueprint", "", "BluePrint policy file (default: built-in EDTC example)")
	dbFile := flag.String("db", "", "meta-database file to load/save")
	jdir := flag.String("journal", "", "journal directory (append-only log + snapshots; excludes -db)")
	fsync := flag.Bool("fsync", false, "with -journal, fsync every commit (survive OS crashes, not just process crashes)")
	follow := flag.String("follow", "", "run as a read-only replication follower of this primary address (requires -journal)")
	trace := flag.Bool("trace", false, "log engine trace to stderr")
	flag.Parse()

	if *follow != "" {
		if *dbFile != "" {
			log.Fatal("-follow replicates into -journal; -db does not apply")
		}
		if err := runFollower(*addr, *bpFile, *jdir, *follow, *fsync, *trace); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*addr, *bpFile, *dbFile, *jdir, *fsync, *trace); err != nil {
		log.Fatal(err)
	}
}

// runFollower mirrors a primary's journal stream into jdir and serves the
// read verbs from the replicated database.
func runFollower(addr, bpFile, jdir, primary string, fsync, trace bool) error {
	if jdir == "" {
		return fmt.Errorf("-follow requires -journal DIR for the replica's local log")
	}
	bp, err := cli.LoadBlueprint(bpFile)
	if err != nil {
		return err
	}
	fol, err := replica.Start(jdir, primary, journal.Options{Fsync: fsync})
	if err != nil {
		return err
	}
	log.Printf("following %s from applied lsn %d: %+v", primary, fol.AppliedLSN(), fol.DB().Stats())
	var engOpts []engine.Option
	if trace {
		engOpts = append(engOpts, engine.WithTracer(logTracer{}))
	}
	eng, err := engine.New(fol.DB(), bp, engOpts...)
	if err != nil {
		fol.Close()
		return err
	}
	srv := server.New(eng, server.WithReadOnly(fol))
	bound, err := srv.Listen(addr)
	if err != nil {
		fol.Close()
		return err
	}
	log.Printf("replica of %s serving on %s", primary, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		log.Printf("shutting down")
	case <-fol.Done():
		// The loop only stops on its own for a terminal error (gap,
		// refusal, divergent history); dying loudly beats serving
		// ever-staler reads that look healthy.
		err := fol.Err()
		srv.Close()
		fol.Close()
		if err == nil {
			err = fmt.Errorf("replication loop stopped")
		}
		return fmt.Errorf("replication failed at applied lsn %d: %w", fol.AppliedLSN(), err)
	}
	if err := srv.Close(); err != nil {
		fol.Close()
		return err
	}
	if err := fol.Close(); err != nil {
		return err
	}
	log.Printf("follower closed at applied lsn %d: %+v", fol.AppliedLSN(), fol.DB().Stats())
	return nil
}

func run(addr, bpFile, dbFile, jdir string, fsync, trace bool) error {
	if dbFile != "" && jdir != "" {
		return fmt.Errorf("-db and -journal are mutually exclusive persistence modes")
	}
	bp, err := cli.LoadBlueprint(bpFile)
	if err != nil {
		return err
	}
	for _, d := range bpl.Analyze(bp) {
		log.Printf("blueprint %s: %s", bp.Name, d)
	}

	db := meta.NewDB()
	var jw *journal.Writer
	if jdir != "" {
		var err error
		jw, db, err = journal.Open(jdir, journal.Options{Fsync: fsync})
		if err != nil {
			return err
		}
		log.Printf("recovered journal %s at lsn %d: %+v", jdir, jw.LastLSN(), db.Stats())
	} else if dbFile != "" {
		f, err := os.Open(dbFile)
		switch {
		case err == nil:
			db, err = meta.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("load %s: %w", dbFile, err)
			}
			log.Printf("loaded %s: %+v", dbFile, db.Stats())
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("%s not found, starting empty", dbFile)
		default:
			return err
		}
	}

	var opts []engine.Option
	if trace {
		opts = append(opts, engine.WithTracer(logTracer{}))
	}
	var srvOpts []server.Option
	if jw != nil {
		opts = append(opts, engine.WithJournal(jw))
		srvOpts = append(srvOpts,
			server.WithJournal(jw),
			// A journaled server is a replication primary for free: the
			// FOLLOW verb tails the same log that makes it durable.
			server.WithFollowSource(replica.NewSource(jw)))
	}
	eng, err := engine.New(db, bp, opts...)
	if err != nil {
		return err
	}
	srv := server.New(eng, srvOpts...)
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("project %s serving on %s", bp.Name, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			return err
		}
		log.Printf("journal closed at lsn %d: %+v", jw.LastLSN(), db.Stats())
	}
	if dbFile != "" {
		f, err := os.Create(dbFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
		log.Printf("saved %s: %+v", dbFile, db.Stats())
	}
	return nil
}

// logTracer streams engine trace entries to the log.
type logTracer struct{}

func (logTracer) Trace(e engine.TraceEntry) { log.Print(e.String()) }
