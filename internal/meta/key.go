// Package meta implements the DAMOCLES meta-database described in section 2
// of Mathys et al., "Controlling Change Propagation and Project Policies in
// IC Design" (EDTC 1995).
//
// The meta-database stores information *about* design data, not the data
// itself.  Each design object is represented by an OID — a meta-data object
// identified by the triplet (block-name, view-type, version) — annotated
// with property/value pairs.  Relationships between design objects are
// represented by Links, which come in two classes: use links (hierarchy
// within a view) and derive links (derivation, equivalence, dependency,
// composition).  Configurations are lightweight sets of database addresses
// referencing OIDs and Links, used to snapshot the state of a design
// hierarchy across time.
package meta

import (
	"fmt"
	"strconv"
	"strings"
)

// Key identifies a meta-data object (OID) by the triplet the paper uses:
// block-name, view-type and version number.  The zero Key is invalid.
type Key struct {
	Block   string
	View    string
	Version int
}

// BlockView identifies a version chain: all versions of one block in one
// view share a BlockView.
type BlockView struct {
	Block string
	View  string
}

// BV returns the version-chain identity of the key.
func (k Key) BV() BlockView { return BlockView{Block: k.Block, View: k.View} }

// String renders the key in the wire syntax used by postEvent in the paper:
// "block,view,version", e.g. "reg,verilog,4".
func (k Key) String() string {
	return k.Block + "," + k.View + "," + strconv.Itoa(k.Version)
}

// IsZero reports whether the key is the zero value.
func (k Key) IsZero() bool { return k.Block == "" && k.View == "" && k.Version == 0 }

// Less is the canonical key ordering used by every sorted listing: block,
// then view, then version.
func (k Key) Less(o Key) bool {
	if k.Block != o.Block {
		return k.Block < o.Block
	}
	if k.View != o.View {
		return k.View < o.View
	}
	return k.Version < o.Version
}

// Validate checks that the key names a plausible OID: non-empty block and
// view names without separator characters, and a positive version.
func (k Key) Validate() error {
	if err := ValidateName(k.Block); err != nil {
		return fmt.Errorf("block: %w", err)
	}
	if err := ValidateName(k.View); err != nil {
		return fmt.Errorf("view: %w", err)
	}
	if k.Version < 1 {
		return fmt.Errorf("version %d: %w", k.Version, ErrBadVersion)
	}
	return nil
}

// ParseKey parses the "block,view,version" wire syntax.
func ParseKey(s string) (Key, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return Key{}, fmt.Errorf("key %q: want block,view,version: %w", s, ErrBadKey)
	}
	v, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return Key{}, fmt.Errorf("key %q: bad version: %w", s, ErrBadKey)
	}
	k := Key{
		Block:   strings.TrimSpace(parts[0]),
		View:    strings.TrimSpace(parts[1]),
		Version: v,
	}
	if err := k.Validate(); err != nil {
		return Key{}, fmt.Errorf("key %q: %w", s, err)
	}
	return k, nil
}

// ValidateName checks a block or view name: non-empty and free of the
// characters the wire protocol and the BluePrint language reserve.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("empty name: %w", ErrBadName)
	}
	if strings.ContainsAny(name, ", \t\r\n\"$;=()#") {
		return fmt.Errorf("name %q contains reserved characters: %w", name, ErrBadName)
	}
	return nil
}
