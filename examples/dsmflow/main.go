// dsmflow runs the second bundled project policy — a deep-submicron
// timing-signoff methodology — showing that the BluePrint mechanism
// accommodates design flows beyond the paper's worked example: the same
// language and engine drive RTL linting, gate-level timing closure,
// floorplanning and SDF extraction, with extraction check-ins
// automatically re-triggering static timing analysis across views.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
)

func main() {
	log.SetFlags(0)
	res, err := flow.RunDSMScenario()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DSM signoff scenario:")
	fmt.Printf("  RTL:        %v\n", res.RTL)
	fmt.Printf("  gates:      %v (slack %q before fix, %q after)\n",
		res.Gates, res.SlackBefore, res.SlackAfter)
	fmt.Printf("  floorplan:  %v\n", res.Floorplan)
	fmt.Printf("  SDF:        %v — its check-in re-ran STA automatically (%d run)\n",
		res.SDF, res.AutoSTARuns)
	fmt.Println("\ntiming notifications delivered to designers:")
	for _, n := range res.Notifications {
		fmt.Println("  ", n)
	}
}
