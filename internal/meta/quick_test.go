package meta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on core meta-database invariants.

// TestQuickVersionChainsContiguous checks that any interleaving of
// NewVersion calls across several chains yields, for every chain, version
// numbers 1..n with no gaps, and that Latest always reports the count.
func TestQuickVersionChainsContiguous(t *testing.T) {
	f := func(ops []uint8) bool {
		db := NewDB()
		blocks := []string{"cpu", "reg", "alu"}
		views := []string{"HDL_model", "SCHEMA", "netlist"}
		counts := map[BlockView]int{}
		for _, op := range ops {
			b := blocks[int(op)%len(blocks)]
			v := views[int(op/3)%len(views)]
			k, err := db.NewVersion(b, v)
			if err != nil {
				return false
			}
			bv := BlockView{Block: b, View: v}
			counts[bv]++
			if k.Version != counts[bv] {
				return false
			}
		}
		for bv, n := range counts {
			vs := db.Versions(bv.Block, bv.View)
			if len(vs) != n {
				return false
			}
			for i, v := range vs {
				if v != i+1 {
					return false
				}
			}
			latest, err := db.Latest(bv.Block, bv.View)
			if err != nil || latest.Version != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickReachableTerminatesAndIsClosed builds random link graphs —
// including cycles — and checks that Reachable terminates, includes the
// root, and is transitively closed.
func TestQuickReachableTerminatesAndIsClosed(t *testing.T) {
	f := func(seed int64, nOIDs, nLinks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nOIDs)%20 + 2
		m := int(nLinks) % 60
		db := NewDB()
		keys := make([]Key, n)
		for i := range keys {
			k, err := db.NewVersion("b"+string(rune('a'+i%26)), "v")
			if err != nil {
				return false
			}
			keys[i] = k
		}
		for i := 0; i < m; i++ {
			from := keys[rng.Intn(n)]
			to := keys[rng.Intn(n)]
			if from == to {
				continue
			}
			// Derive links have no view constraint; ignore duplicates.
			if _, err := db.AddLink(DeriveLink, from, to, "", nil, nil); err != nil {
				return false
			}
		}
		root := keys[rng.Intn(n)]
		reach := db.Reachable(root, FollowAllLinks)
		inReach := map[Key]bool{}
		for _, k := range reach {
			inReach[k] = true
		}
		if !inReach[root] {
			return false
		}
		// Closure: every link leaving a reachable OID lands in the set.
		closed := true
		for _, k := range reach {
			for _, l := range db.LinksFrom(k) {
				if !inReach[l.To] {
					closed = false
				}
			}
		}
		return closed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSaveLoadIdempotent round-trips randomly built databases through
// Save/Load and compares observable state.
func TestQuickSaveLoadIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		var keys []Key
		for i := 0; i < rng.Intn(15)+1; i++ {
			k, err := db.NewVersion("blk"+string(rune('a'+rng.Intn(4))), "view"+string(rune('a'+rng.Intn(3))))
			if err != nil {
				return false
			}
			if rng.Intn(2) == 0 {
				if err := db.SetProp(k, "p", "v"); err != nil {
					return false
				}
			}
			keys = append(keys, k)
		}
		for i := 0; i < rng.Intn(10); i++ {
			a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
			if a == b {
				continue
			}
			if _, err := db.AddLink(DeriveLink, a, b, "t", []string{"outofdate"}, nil); err != nil {
				return false
			}
		}
		roundTripped := func(d *DB) *DB {
			var buf bytes.Buffer
			if err := d.Save(&buf); err != nil {
				t.Fatal(err)
			}
			d2, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			return d2
		}
		db2 := roundTripped(db)
		if db.Stats() != db2.Stats() {
			return false
		}
		k1, k2 := db.Keys(), db2.Keys()
		if len(k1) != len(k2) {
			return false
		}
		for i := range k1 {
			if k1[i] != k2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
